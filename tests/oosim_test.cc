/**
 * @file
 * Tests for the cycle-accurate out-of-order pipeline (src/oosim/):
 * micro-trace tests that isolate one mechanism at a time (dynamic
 * scheduling, FU-port and result-bus contention, ROB/issue-queue
 * limits, branch handling, memory-level parallelism) against exact
 * hand-derived cycle counts, determinism and full-workload checks
 * against the in-order reference, and the golden validation of the
 * out-of-order interval model against this simulator over a seeded
 * design-space sample.
 */

#include <algorithm>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "test_util.hh"

namespace mech {
namespace {

using test::TraceBuilder;
using test::idealCycles;
using test::idealSim;

/**
 * Idealized out-of-order configuration: perfect memory, no predictor
 * noise, and enough ALU issue ports and result buses to sustain the
 * requested width (the OooParams defaults are a balanced 4-wide
 * machine but only carry three simple ALUs).
 */
OoOSimConfig
idealOoO(std::uint32_t width = 4, std::uint32_t frontend_depth = 2)
{
    OoOSimConfig cfg;
    cfg.core = idealSim(width, frontend_depth);
    cfg.ooo.fuAlu = std::max(cfg.ooo.fuAlu, width);
    cfg.ooo.resultBuses = std::max(cfg.ooo.resultBuses, width);
    return cfg;
}

// ---- ideal streaming -------------------------------------------------------

class OoOIdealStreaming
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(OoOIdealStreaming, HazardFreeTraceRunsAtFullWidth)
{
    auto [w, n] = GetParam();
    Trace tr = TraceBuilder().filler(n).build();
    OoOSimResult res = simulateOutOfOrder(tr, idealOoO(w, 2));
    // Fetch, dispatch, schedule, execute and retire all sustain W per
    // cycle, so the out-of-order pipeline matches the in-order ideal:
    // ceil(N/W) issue groups plus the same fill.
    EXPECT_EQ(res.cycles, idealCycles(n, w, 2));
    EXPECT_EQ(res.retired, static_cast<InstCount>(n));
    EXPECT_EQ(res.robStallCycles, 0u);
    EXPECT_EQ(res.iqStallCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndLengths, OoOIdealStreaming,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1, 4, 7, 64, 400)));

TEST(OoOSim, DeeperFrontEndOnlyAddsFill)
{
    Trace tr = TraceBuilder().filler(100).build();
    Cycles d2 = simulateOutOfOrder(tr, idealOoO(4, 2)).cycles;
    Cycles d6 = simulateOutOfOrder(tr, idealOoO(4, 6)).cycles;
    EXPECT_EQ(d6, d2 + 4);
}

TEST(OoOSim, EmptyTraceIsZeroCycles)
{
    Trace tr;
    OoOSimResult res = simulateOutOfOrder(tr, idealOoO());
    EXPECT_EQ(res.cycles, 0u);
    EXPECT_EQ(res.retired, 0u);
}

// ---- dynamic scheduling ----------------------------------------------------

TEST(OoOSim, SerialChainIssuesBackToBack)
{
    // Every instruction consumes the previous one: issue is bound to
    // one per cycle, but the writeback-before-select half-cycle rule
    // means a unit-latency producer feeds its consumer in the very
    // next cycle — the chain costs N cycles plus fill, the same as an
    // independent stream at W=1.
    TraceBuilder b;
    b.alu(8);
    for (int i = 1; i < 100; ++i)
        b.alu(static_cast<RegIndex>(8 + i % 20),
              static_cast<RegIndex>(8 + (i - 1) % 20));
    Trace tr = b.build();
    OoOSimResult res = simulateOutOfOrder(tr, idealOoO(4, 2));
    EXPECT_EQ(res.cycles, 100u + 4u);
}

TEST(OoOSim, IndependentLongLatencyOpsOverlap)
{
    // Four independent long multiplies issue together (four
    // multiplier ports) and overlap completely: the group costs one
    // latency at the in-order retire point, not four.  The in-order
    // pipeline serializes them in the execute stage — the defining
    // contrast with dynamic scheduling.
    OoOSimConfig cfg = idealOoO(4, 2);
    cfg.core.machine.latIntMult = 16;
    cfg.ooo.fuMul = 4;
    TraceBuilder b;
    for (int i = 0; i < 4; ++i)
        b.op(OpClass::IntMult, static_cast<RegIndex>(24 + i));
    Trace tr = b.filler(77).build();
    Trace plain = TraceBuilder().filler(81).build();
    Cycles with_mul = simulateOutOfOrder(tr, cfg).cycles;
    Cycles without = simulateOutOfOrder(plain, cfg).cycles;
    // The overlapped group exposes at most one latency end to end.
    EXPECT_LE(with_mul, without + 16 + 2);

    SimConfig in_order = idealSim(4, 2);
    in_order.machine.latIntMult = 16;
    // In order, the three serialized extra latencies are all exposed.
    EXPECT_GE(simulateInOrder(tr, in_order).cycles, with_mul + 2 * 16);
}

// ---- functional-unit ports -------------------------------------------------

TEST(OoOSim, MultipliesPipelineThroughOneUnit)
{
    // Fully pipelined issue ports: one multiplier accepts one new
    // multiply per cycle, so N independent multiplies of latency L
    // finish in N + L + fill cycles, not N*L.
    OoOSimConfig cfg = idealOoO(4, 2);
    cfg.core.machine.latIntMult = 4;
    cfg.ooo.fuMul = 1;
    TraceBuilder b;
    for (int i = 0; i < 10; ++i)
        b.op(OpClass::IntMult, static_cast<RegIndex>(8 + i));
    Trace tr = b.build();
    OoOSimResult res = simulateOutOfOrder(tr, cfg);
    EXPECT_EQ(res.cycles, 10u + 4u + 3u);
    EXPECT_GT(res.fuStallEvents, 0u);
}

TEST(OoOSim, SecondMultiplierDoublesIssueBandwidth)
{
    OoOSimConfig one = idealOoO(4, 2);
    one.core.machine.latIntMult = 4;
    one.ooo.fuMul = 1;
    OoOSimConfig two = one;
    two.ooo.fuMul = 2;
    TraceBuilder b;
    for (int i = 0; i < 10; ++i)
        b.op(OpClass::IntMult, static_cast<RegIndex>(8 + i));
    Trace tr = b.build();
    // Two units issue two per cycle: ceil(N/2) + L + fill.
    EXPECT_EQ(simulateOutOfOrder(tr, two).cycles, 5u + 4u + 3u);
    EXPECT_LT(simulateOutOfOrder(tr, two).cycles,
              simulateOutOfOrder(tr, one).cycles);
}

// ---- result buses ----------------------------------------------------------

TEST(OoOSim, ResultBusContentionBoundsCompletion)
{
    // Four ALUs complete per cycle but a single result bus grants one
    // writeback per cycle (oldest first): throughput collapses to one
    // retirement per cycle.
    OoOSimConfig cfg = idealOoO(4, 2);
    cfg.ooo.resultBuses = 1;
    Trace tr = TraceBuilder().filler(40).build();
    OoOSimResult res = simulateOutOfOrder(tr, cfg);
    EXPECT_EQ(res.cycles, 40u + 4u);
    EXPECT_GT(res.busStallEvents, 0u);
}

// ---- ROB / issue-queue limits ----------------------------------------------

TEST(OoOSim, SingleEntryIssueQueueSerializesDispatch)
{
    OoOSimConfig cfg = idealOoO(4, 2);
    cfg.ooo.iqSize = 1;
    Trace tr = TraceBuilder().filler(50).build();
    OoOSimResult res = simulateOutOfOrder(tr, cfg);
    // One reservation-station slot admits one instruction per cycle.
    EXPECT_EQ(res.cycles, 50u + 4u);
    EXPECT_GT(res.iqStallCycles, 0u);
    EXPECT_EQ(res.maxIqOccupancy, 1u);
}

TEST(OoOSim, TinyRobThrottlesThroughput)
{
    OoOSimConfig cfg = idealOoO(4, 2);
    cfg.ooo.robSize = 4;
    Trace tr = TraceBuilder().filler(64).build();
    OoOSimResult res = simulateOutOfOrder(tr, cfg);
    EXPECT_GT(res.cycles, idealCycles(64, 4, 2));
    EXPECT_GT(res.robStallCycles, 0u);
    EXPECT_EQ(res.maxRobOccupancy, 4u);
    EXPECT_EQ(res.retired, 64u);
}

// ---- memory-level parallelism ----------------------------------------------

TEST(OoOSim, IndependentMissesOverlapInTheWindow)
{
    // Two independent cold misses to different lines issue together
    // (two memory ports) and overlap almost completely — MLP emerges
    // from the window, with no MLP constant anywhere.
    SimConfig core;
    core.machine = idealSim(4, 2).machine;
    core.perfectICache = true;
    core.perfectTlbs = true;
    OoOSimConfig cfg;
    cfg.core = core;

    Trace two = TraceBuilder()
                    .load(8, 0x10000000)
                    .load(9, 0x20000000)
                    .filler(8)
                    .build();
    Trace one = TraceBuilder()
                    .load(8, 0x10000000)
                    .alu(9)
                    .filler(8)
                    .build();
    Cycles c_two = simulateOutOfOrder(two, cfg).cycles;
    Cycles c_one = simulateOutOfOrder(one, cfg).cycles;
    EXPECT_LE(c_two, c_one + 2);
}

TEST(OoOSim, DependentMissesSerialize)
{
    // A pointer-chase pair (the second load's address register is the
    // first load's result) pays both latencies end to end.
    SimConfig core;
    core.machine = idealSim(4, 2).machine;
    core.perfectICache = true;
    core.perfectTlbs = true;
    OoOSimConfig cfg;
    cfg.core = core;

    Trace chased = TraceBuilder()
                       .load(8, 0x10000000)
                       .load(9, 0x20000000, 8)
                       .filler(8)
                       .build();
    Trace indep = TraceBuilder()
                      .load(8, 0x10000000)
                      .load(9, 0x20000000)
                      .filler(8)
                      .build();
    Cycles miss = core.machine.l2HitCycles + core.machine.memCycles;
    EXPECT_GE(simulateOutOfOrder(chased, cfg).cycles,
              simulateOutOfOrder(indep, cfg).cycles + miss - 2);
}

TEST(OoOSim, StoresNeverBlockRetirement)
{
    SimConfig core;
    core.machine = idealSim(4, 2).machine;
    core.perfectICache = true;
    core.perfectTlbs = true;
    OoOSimConfig cfg;
    cfg.core = core;
    Trace with_store =
        TraceBuilder().filler(10).store(0x10000000).filler(10).build();
    Trace with_alu = TraceBuilder().filler(10).alu(8).filler(10).build();
    EXPECT_EQ(simulateOutOfOrder(with_store, cfg).cycles,
              simulateOutOfOrder(with_alu, cfg).cycles);
}

// ---- branches --------------------------------------------------------------

TEST(OoOSim, CorrectTakenBranchCostsOneBubble)
{
    OoOSimConfig cfg = idealOoO(1, 2);
    cfg.core.predictor = PredictorKind::Taken;
    Trace with_branch =
        TraceBuilder().filler(20).branch(true).filler(20).build();
    Trace plain = TraceBuilder().filler(20).alu(8).filler(20).build();
    OoOSimResult res = simulateOutOfOrder(with_branch, cfg);
    EXPECT_EQ(res.cycles,
              simulateOutOfOrder(plain, cfg).cycles + 1);
    EXPECT_EQ(res.predictedTakenCorrect, 1u);
    EXPECT_EQ(res.mispredicts, 0u);
    EXPECT_GT(res.takenBubbleCycles, 0u);
}

TEST(OoOSim, MispredictStallsFetchUntilWriteback)
{
    // A ready mispredicted branch traverses dispatch (D-1 cycles
    // behind fetch), one schedule cycle and one execute cycle before
    // its writeback restarts the front end: D+1 lost fetch cycles.
    for (std::uint32_t d : {2u, 4u, 6u}) {
        OoOSimConfig cfg = idealOoO(1, d);
        cfg.core.predictor = PredictorKind::NotTaken;
        Trace with_miss =
            TraceBuilder().filler(20).branch(true).filler(20).build();
        Trace plain =
            TraceBuilder().filler(20).alu(8).filler(20).build();
        OoOSimResult res = simulateOutOfOrder(with_miss, cfg);
        EXPECT_EQ(res.mispredicts, 1u);
        EXPECT_EQ(res.cycles,
                  simulateOutOfOrder(plain, cfg).cycles + d + 1)
            << "at front-end depth " << d;
        EXPECT_GT(res.mispredictStallCycles, 0u);
    }
}

// ---- determinism and full workloads ----------------------------------------

TEST(OoOSim, BitIdenticalAcrossRuns)
{
    Trace tr = generateTrace(profileByName("sha"), 10000);
    OoOSimConfig cfg = oooSimConfigFor(defaultDesignPoint());
    OoOSimResult a = simulateOutOfOrder(tr, cfg);
    OoOSimResult b = simulateOutOfOrder(tr, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.robStallCycles, b.robStallCycles);
    EXPECT_EQ(a.iqStallCycles, b.iqStallCycles);
    EXPECT_EQ(a.fuStallEvents, b.fuStallEvents);
    EXPECT_EQ(a.busStallEvents, b.busStallEvents);
    EXPECT_EQ(a.maxRobOccupancy, b.maxRobOccupancy);
    EXPECT_EQ(a.maxIqOccupancy, b.maxIqOccupancy);
}

TEST(OoOSim, OutOfOrderNeverSlowerThanInOrder)
{
    // Same trace, same core parameters: the window can only hide
    // latency the in-order pipeline exposes.
    for (const char *bench : {"sha", "tiffdither", "adpcm_d"}) {
        Trace tr = generateTrace(profileByName(bench), 15000);
        DesignPoint point = defaultDesignPoint();
        OoOSimResult ooo = simulateOutOfOrder(tr, oooSimConfigFor(point));
        SimResult in_order = simulateInOrder(tr, simConfigFor(point));
        EXPECT_EQ(ooo.retired, tr.size()) << bench;
        EXPECT_LE(ooo.cycles, in_order.cycles) << bench;
    }
}

TEST(OoOSimDeathTest, StructurallyInvalidConfigIsAFatalUserError)
{
    Trace tr = TraceBuilder().filler(4).build();
    OoOSimConfig no_rob = idealOoO();
    no_rob.ooo.robSize = 0;
    EXPECT_EXIT(simulateOutOfOrder(tr, no_rob),
                ::testing::ExitedWithCode(1), "issue queue");
    OoOSimConfig no_fu = idealOoO();
    no_fu.ooo.fuMem = 0;
    EXPECT_EXIT(simulateOutOfOrder(tr, no_fu),
                ::testing::ExitedWithCode(1), "functional-unit");
    OoOSimConfig no_bus = idealOoO();
    no_bus.ooo.resultBuses = 0;
    EXPECT_EXIT(simulateOutOfOrder(tr, no_bus),
                ::testing::ExitedWithCode(1), "result bus");
}

// ---- backend integration ----------------------------------------------------

TEST(OoOSimBackend, RegisteredAndMatchesSimulateOutOfOrder)
{
    BackendRegistry &reg = BackendRegistry::global();
    ASSERT_NE(reg.find(kOoOSimBackend), nullptr);
    EXPECT_TRUE(reg.find("oosim")->isDetailed());
    EXPECT_TRUE(reg.find("oosim")->needsTrace());
    EXPECT_TRUE(reg.find("oosim")->usesOoo());
    EXPECT_TRUE(reg.find("ooo")->usesOoo());
    EXPECT_FALSE(reg.find("model")->usesOoo());
    EXPECT_FALSE(reg.find("sim")->usesOoo());

    DseStudy study(profileByName("sha"), 10000);
    DesignPoint point = defaultDesignPoint();
    point.ooo.robSize = 64;
    PointEvaluation ev =
        study.evaluate(point, backendSet("oosim"));
    OoOSimResult direct =
        simulateOutOfOrder(study.trace(), oooSimConfigFor(point));
    ASSERT_EQ(ev.results.size(), 1u);
    const EvalResult &res = ev.results[0];
    EXPECT_EQ(res.backend, kOoOSimBackend);
    EXPECT_EQ(res.cycles, static_cast<double>(direct.cycles));
    EXPECT_EQ(res.instructions, direct.retired);
    ASSERT_TRUE(res.oooDetail.has_value());
    EXPECT_EQ(res.oooDetail->cycles, direct.cycles);
    EXPECT_EQ(res.oooDetail->mispredicts, direct.mispredicts);
    EXPECT_EQ(res.oooDetail->maxRobOccupancy, direct.maxRobOccupancy);
    EXPECT_FALSE(res.hasStack);
}

TEST(OoOSimBackend, OooCpiErrorComparesModelAgainstSimulator)
{
    DseStudy study(profileByName("sha"), 10000);
    PointEvaluation ev =
        study.evaluate(defaultDesignPoint(), backendSet("ooo,oosim"));
    ASSERT_TRUE(ev.has(kOooBackend));
    ASSERT_TRUE(ev.has(kOoOSimBackend));
    auto err = ev.oooCpiError();
    ASSERT_TRUE(err.has_value());
    EXPECT_GE(*err, 0.0);
    // The in-order pair is absent, so the in-order error is too.
    EXPECT_FALSE(ev.cpiError().has_value());
}

TEST(SearchDeathTest, OooAxesWithoutOooBackendAreRejected)
{
    ThreadPool pool(0);
    SpaceSpec spec = SpaceSpec::parse("rob=64,128");
    SearchEvaluator model_only({profileByName("sha")}, 5000,
                               parseObjectives("delay"),
                               backendSet("model"));
    EXPECT_EXIT(model_only.prepare(spec, pool),
                ::testing::ExitedWithCode(1), "out-of-order");
}

TEST(Search, OooBackendAcceptsOooAxes)
{
    ThreadPool pool(0);
    SpaceSpec spec = SpaceSpec::parse("rob=64,128");
    SearchEvaluator ooo({profileByName("sha")}, 5000,
                        parseObjectives("delay"), backendSet("ooo"));
    ooo.prepare(spec, pool);
    EvalCache cache;
    SearchStats stats;
    std::vector<DesignPoint> points = {spec.at(0), spec.at(1)};
    auto evals = ooo.evaluateBatch(points, cache, pool, stats);
    ASSERT_EQ(evals.size(), 2u);
    // Different ROB sizes must reach the backend: the two points may
    // not collapse to one cached evaluation.
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_NE(evals[0], evals[1]);
}

// ---- golden validation ------------------------------------------------------

TEST(OoOGolden, IntervalModelTracksCycleAccurateSimulator)
{
    // The PR-3 case study in reverse: the out-of-order interval model
    // is validated against the cycle-accurate out-of-order pipeline
    // over a seeded sample of the out-of-order design space.  The
    // sampled axes keep the machine balanced (issue queue, buses and
    // FU mix sized for the width), which is the regime the interval
    // model assumes; docs/oosim.md documents the thresholds and the
    // calibration behind them.
    SpaceSpec spec = SpaceSpec::parse(
        "width=1,2,4; rob=64,128,256; iq=32,64; buses=4,8");
    std::mt19937_64 rng(20120401); // ISPASS'12, seeded once
    std::set<std::uint64_t> picked;
    while (picked.size() < 8)
        picked.insert(rng() % spec.size());

    double total_err = 0.0;
    double max_err = 0.0;
    std::size_t samples = 0;
    for (const char *bench : {"sha", "tiffdither"}) {
        DseStudy study(profileByName(bench), 20000);
        for (std::uint64_t index : picked) {
            PointEvaluation ev = study.evaluate(
                spec.at(index), backendSet("ooo,oosim"));
            auto err = ev.oooCpiError();
            ASSERT_TRUE(err.has_value()) << bench << " #" << index;
            total_err += *err;
            max_err = std::max(max_err, *err);
            ++samples;
        }
    }
    const double mean_err = total_err / static_cast<double>(samples);
    // Thresholds from the calibration sweep in docs/oosim.md (MiBench
    // x widths {1,2,4}: mean 10.5%, max 35.2%), with headroom so the
    // gate flags modeling regressions rather than sampling noise.
    EXPECT_LT(mean_err, 0.15) << "mean CPI error over " << samples
                              << " samples";
    EXPECT_LT(max_err, 0.40);
}

} // namespace
} // namespace mech
