/**
 * @file
 * Concurrency stress tests for the scaling-critical pieces the CI
 * TSan job hammers: multi-producer bulk submission into one
 * ThreadPool (parallelFor interleaved with submit() traffic) and the
 * lock-striped EvalCache probed concurrently with inserts.  The
 * assertions are deliberately simple — counts, pointer stability,
 * value integrity — because the interesting verdict is TSan's.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "dse/design_space.hh"
#include "search/eval_cache.hh"

namespace {

using namespace mech;

TEST(ParallelStress, MultiProducerBulkAndSubmitTraffic)
{
    // Several producers publish parallelFor jobs into one shared pool
    // while others push future-based submit() tasks through the same
    // queue: the two submission paths share the mutex, the condition
    // variables and the workers, so this is the densest interleaving
    // the DSE layer can produce (bulk sweeps while studies build).
    ThreadPool pool(4);
    constexpr int kBulkProducers = 4;
    constexpr int kSubmitProducers = 2;
    constexpr int kRounds = 20;
    constexpr std::size_t kN = 2048;

    std::atomic<long long> bulkTotal{0};
    std::atomic<long long> submitTotal{0};
    std::vector<std::thread> producers;

    for (int p = 0; p < kBulkProducers; ++p) {
        producers.emplace_back([&pool, &bulkTotal] {
            for (int round = 0; round < kRounds; ++round) {
                std::atomic<long long> mine{0};
                pool.parallelFor(
                    kN, 8,
                    [&mine](std::size_t begin, std::size_t end) {
                        mine += static_cast<long long>(end - begin);
                    });
                ASSERT_EQ(mine.load(), static_cast<long long>(kN));
                bulkTotal += mine.load();
            }
        });
    }
    for (int p = 0; p < kSubmitProducers; ++p) {
        producers.emplace_back([&pool, &submitTotal] {
            for (int round = 0; round < kRounds; ++round) {
                std::vector<std::future<int>> futs;
                futs.reserve(32);
                for (int i = 0; i < 32; ++i)
                    futs.push_back(pool.submit([i] { return i; }));
                long long sum = 0;
                for (auto &f : futs)
                    sum += f.get();
                submitTotal += sum;
            }
        });
    }
    for (auto &t : producers)
        t.join();

    EXPECT_EQ(bulkTotal.load(),
              static_cast<long long>(kBulkProducers) * kRounds * kN);
    EXPECT_EQ(submitTotal.load(),
              static_cast<long long>(kSubmitProducers) * kRounds *
                  (31 * 32 / 2));
}

TEST(ParallelStress, ShardedCacheProbesDuringInserts)
{
    // One writer populates the cache in enumeration order (the
    // coordinator role) while reader threads hammer find() across the
    // whole space: entries must appear atomically (null or fully
    // formed, never torn) and pointers must stay stable.
    EvalCache cache;
    const auto grid = table2Space();
    constexpr int kReaders = 4;

    std::atomic<bool> done{false};
    std::atomic<long long> hits{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                for (const DesignPoint &p : grid) {
                    const SearchEval *hit = cache.find(p);
                    if (!hit)
                        continue;
                    // A visible entry is fully formed.
                    ASSERT_TRUE(hit->point == p);
                    ASSERT_EQ(hit->aggregate.size(), 1u);
                    ++hits;
                }
            }
        });
    }

    std::vector<const SearchEval *> inserted;
    inserted.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SearchEval eval;
        eval.point = grid[i];
        eval.aggregate = {static_cast<double>(i)};
        const SearchEval &stored = cache.insert(std::move(eval));
        EXPECT_EQ(stored.firstIndex, i);
        inserted.push_back(&stored);
    }
    done.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();

    // Deterministic coordinator-order indices and stable pointers.
    EXPECT_EQ(cache.size(), grid.size());
    auto entries = cache.entries();
    ASSERT_EQ(entries.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(entries[i], inserted[i]);
        EXPECT_EQ(cache.find(grid[i]), inserted[i]);
        EXPECT_EQ(entries[i]->aggregate[0], static_cast<double>(i));
    }
    EXPECT_GE(hits.load(), 0);
}

} // namespace
