/**
 * @file
 * Concurrency stress tests for the scaling-critical pieces the CI
 * TSan job hammers: multi-producer bulk submission into one
 * ThreadPool (parallelFor interleaved with submit() traffic) and the
 * lock-striped EvalCache probed concurrently with inserts.  The
 * assertions are deliberately simple — counts, pointer stability,
 * value integrity — because the interesting verdict is TSan's.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "dse/design_space.hh"
#include "search/eval_cache.hh"
#include "test_util.hh"

namespace {

using namespace mech;

TEST(ParallelStress, MultiProducerBulkAndSubmitTraffic)
{
    // Several producers publish parallelFor jobs into one shared pool
    // while others push future-based submit() tasks through the same
    // queue: the two submission paths share the mutex, the condition
    // variables and the workers, so this is the densest interleaving
    // the DSE layer can produce (bulk sweeps while studies build).
    ThreadPool pool(4);
    constexpr int kBulkProducers = 4;
    constexpr int kSubmitProducers = 2;
    constexpr int kRounds = 20;
    constexpr std::size_t kN = 2048;

    std::atomic<long long> bulkTotal{0};
    std::atomic<long long> submitTotal{0};
    std::vector<std::thread> producers;

    for (int p = 0; p < kBulkProducers; ++p) {
        producers.emplace_back([&pool, &bulkTotal] {
            for (int round = 0; round < kRounds; ++round) {
                std::atomic<long long> mine{0};
                pool.parallelFor(
                    kN, 8,
                    [&mine](std::size_t begin, std::size_t end) {
                        mine += static_cast<long long>(end - begin);
                    });
                ASSERT_EQ(mine.load(), static_cast<long long>(kN));
                bulkTotal += mine.load();
            }
        });
    }
    for (int p = 0; p < kSubmitProducers; ++p) {
        producers.emplace_back([&pool, &submitTotal] {
            for (int round = 0; round < kRounds; ++round) {
                std::vector<std::future<int>> futs;
                futs.reserve(32);
                for (int i = 0; i < 32; ++i)
                    futs.push_back(pool.submit([i] { return i; }));
                long long sum = 0;
                for (auto &f : futs)
                    sum += f.get();
                submitTotal += sum;
            }
        });
    }
    for (auto &t : producers)
        t.join();

    EXPECT_EQ(bulkTotal.load(),
              static_cast<long long>(kBulkProducers) * kRounds * kN);
    EXPECT_EQ(submitTotal.load(),
              static_cast<long long>(kSubmitProducers) * kRounds *
                  (31 * 32 / 2));
}

TEST(ParallelStress, ShardedCacheProbesDuringInserts)
{
    // One writer populates the cache in enumeration order (the
    // coordinator role) while reader threads hammer find() across the
    // whole space: entries must appear atomically (null or fully
    // formed, never torn) and pointers must stay stable.
    EvalCache cache;
    const auto grid = table2Space();
    constexpr int kReaders = 4;

    std::atomic<bool> done{false};
    std::atomic<long long> hits{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                for (const DesignPoint &p : grid) {
                    const SearchEval *hit = cache.find(p);
                    if (!hit)
                        continue;
                    // A visible entry is fully formed.
                    ASSERT_TRUE(hit->point == p);
                    ASSERT_EQ(hit->aggregate.size(), 1u);
                    ++hits;
                }
            }
        });
    }

    std::vector<const SearchEval *> inserted;
    inserted.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SearchEval eval;
        eval.point = grid[i];
        eval.aggregate = {static_cast<double>(i)};
        const SearchEval &stored = cache.insert(std::move(eval));
        EXPECT_EQ(stored.firstIndex, i);
        inserted.push_back(&stored);
    }
    done.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();

    // Deterministic coordinator-order indices and stable pointers.
    EXPECT_EQ(cache.size(), grid.size());
    auto entries = cache.entries();
    ASSERT_EQ(entries.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(entries[i], inserted[i]);
        EXPECT_EQ(cache.find(grid[i]), inserted[i]);
        EXPECT_EQ(entries[i]->aggregate[0], static_cast<double>(i));
    }
    EXPECT_GE(hits.load(), 0);
}

TEST(ParallelStress, ConcurrentOoOSimulationsAreIndependent)
{
    // The out-of-order pipeline keeps all mutable state per instance;
    // many simulations of one shared (read-only) trace must neither
    // race nor diverge.  TSan checks the former, the exact-match
    // assertion the latter.
    DseStudy study(profileByName("sha"), 8000);
    const OoOSimConfig cfg = oooSimConfigFor(defaultDesignPoint());
    const OoOSimResult reference =
        simulateOutOfOrder(study.trace(), cfg);

    constexpr int kThreads = 6;
    std::vector<OoOSimResult> results(kThreads);
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
        workers.emplace_back([&, w] {
            results[w] = simulateOutOfOrder(study.trace(), cfg);
        });
    }
    for (auto &t : workers)
        t.join();

    for (const OoOSimResult &r : results) {
        EXPECT_EQ(r.cycles, reference.cycles);
        EXPECT_EQ(r.retired, reference.retired);
        EXPECT_EQ(r.mispredicts, reference.mispredicts);
        EXPECT_EQ(r.fuStallEvents, reference.fuStallEvents);
        EXPECT_EQ(r.busStallEvents, reference.busStallEvents);
        EXPECT_EQ(r.maxRobOccupancy, reference.maxRobOccupancy);
        EXPECT_EQ(r.maxIqOccupancy, reference.maxIqOccupancy);
    }
}

TEST(ParallelStress, OoOSimBatchIsThreadCountInvariant)
{
    // evaluateBatch with the cycle-accurate out-of-order backend must
    // produce bit-identical aggregates no matter how the pool carves
    // up the batch.
    SpaceSpec spec =
        SpaceSpec::parse("width=1,2,4; rob=64,128; buses=4,8");
    std::vector<DesignPoint> points;
    for (std::uint64_t i = 0; i < spec.size(); ++i)
        points.push_back(spec.at(i));

    std::vector<std::vector<double>> reference;
    for (std::size_t threads : {std::size_t(0), std::size_t(4)}) {
        ThreadPool pool(threads);
        SearchEvaluator eval({profileByName("sha")}, 5000,
                             parseObjectives("delay"),
                             backendSet("oosim"));
        eval.prepare(spec, pool);
        EvalCache cache;
        SearchStats stats;
        auto evals = eval.evaluateBatch(points, cache, pool, stats);
        ASSERT_EQ(evals.size(), points.size());
        std::vector<std::vector<double>> aggregates;
        for (const SearchEval *e : evals)
            aggregates.push_back(e->aggregate);
        if (reference.empty())
            reference = std::move(aggregates);
        else
            EXPECT_EQ(aggregates, reference);
    }
}

} // namespace
