/**
 * @file
 * Tests for the `.mprof` profile artifact codec: bit-identical model
 * results across a save/load round trip over the full 192-point
 * Table 2 space (the acceptance contract of the artifact workflow),
 * lossless field-level round trips, and rejection of truncated files,
 * bad magic, and future format versions.
 */

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dse/design_space.hh"
#include "dse/study.hh"
#include "eval/registry.hh"
#include "profiler/profile_io.hh"
#include "workload/suites.hh"

namespace {

using namespace mech;

constexpr InstCount kLen = 20000;

/** One shared in-memory artifact encoding for the format tests. */
const std::string &
encodedArtifact()
{
    static const std::string encoded = [] {
        DseStudy study(profileByName("patricia"), kLen);
        ProfileArtifact artifact;
        artifact.name = study.name();
        artifact.profile = study.profile();
        artifact.trace = study.trace();
        artifact.hasTrace = true;
        std::ostringstream os(std::ios::binary);
        writeProfileArtifact(artifact, os);
        return os.str();
    }();
    return encoded;
}

ProfileArtifact
decode(const std::string &bytes)
{
    std::istringstream is(bytes, std::ios::binary);
    return readProfileArtifact(is);
}

// ---- golden equality: artifact path vs in-process path --------------------------

TEST(ProfileIo, ModelResultsBitIdenticalAcrossFullTable2Space)
{
    const std::string path =
        testing::TempDir() + "profile_io_roundtrip.mprof";

    DseStudy fresh(profileByName("tiffdither"), kLen);
    fresh.save(path);
    DseStudy loaded = DseStudy::load(path);

    EXPECT_EQ(loaded.name(), fresh.name());
    ASSERT_TRUE(loaded.hasTrace());

    auto space = table2Space();
    ASSERT_EQ(space.size(), 192u);
    for (const auto &point : space) {
        EvalResult a = fresh.evaluate(point).model();
        EvalResult b = loaded.evaluate(point).model();
        // Bitwise equality: the artifact round trip must be exact,
        // not approximately equal.
        ASSERT_EQ(a.cycles, b.cycles) << point.label();
        ASSERT_EQ(a.instructions, b.instructions) << point.label();
        ASSERT_EQ(a.edp, b.edp) << point.label();
        for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
            auto comp = static_cast<CpiComponent>(c);
            ASSERT_EQ(a.stack[comp], b.stack[comp])
                << point.label() << " component "
                << cpiComponentName(comp);
        }
    }
}

TEST(ProfileIo, SimulationBitIdenticalFromLoadedTrace)
{
    const std::string path =
        testing::TempDir() + "profile_io_sim.mprof";

    DseStudy fresh(profileByName("sha"), kLen);
    fresh.save(path);
    DseStudy loaded = DseStudy::load(path);

    const BackendSet backends = backendSet("sim");
    DesignPoint point = defaultDesignPoint();
    EvalResult a = fresh.evaluate(point, backends).of(kSimBackend);
    EvalResult b = loaded.evaluate(point, backends).of(kSimBackend);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.detail->cycles, b.detail->cycles);
    EXPECT_EQ(a.detail->mispredicts, b.detail->mispredicts);
    EXPECT_EQ(a.detail->dependencyStallCycles,
              b.detail->dependencyStallCycles);
}

// ---- lossless field round trip ---------------------------------------------------

TEST(ProfileIo, FieldsRoundTripLosslessly)
{
    ProfileArtifact artifact = decode(encodedArtifact());
    ProfileArtifact again;
    {
        std::ostringstream os(std::ios::binary);
        writeProfileArtifact(artifact, os);
        ASSERT_EQ(os.str(), encodedArtifact())
            << "re-encoding must be byte-identical";
        again = decode(os.str());
    }

    const WorkloadProfile &p = artifact.profile;
    const WorkloadProfile &q = again.profile;
    EXPECT_EQ(artifact.name, again.name);
    EXPECT_EQ(p.program.n, q.program.n);
    EXPECT_EQ(p.program.branches, q.program.branches);
    EXPECT_EQ(p.program.takenBranches, q.program.takenBranches);
    for (std::size_t oc = 0; oc < kNumOpClasses; ++oc) {
        EXPECT_EQ(p.program.mix.counts[oc], q.program.mix.counts[oc]);
        const Histogram &ha =
            p.program.deps.of(static_cast<OpClass>(oc));
        const Histogram &hb =
            q.program.deps.of(static_cast<OpClass>(oc));
        EXPECT_EQ(ha.total(), hb.total());
        EXPECT_EQ(ha.maxKey(), hb.maxKey());
        for (std::uint64_t k = 0; k <= ha.maxKey(); ++k)
            EXPECT_EQ(ha.at(k), hb.at(k));
    }
    EXPECT_EQ(p.memory.loadMemoryIdx, q.memory.loadMemoryIdx);
    EXPECT_EQ(p.memory.loadL2HitIdx, q.memory.loadL2HitIdx);
    EXPECT_EQ(p.l2Stream.size(), q.l2Stream.size());
    ASSERT_EQ(p.branchProfiles.size(), q.branchProfiles.size());
    for (std::size_t i = 0; i < p.branchProfiles.size(); ++i) {
        EXPECT_EQ(p.branchProfiles[i].kind, q.branchProfiles[i].kind);
        EXPECT_EQ(p.branchProfiles[i].mispredicts,
                  q.branchProfiles[i].mispredicts);
        EXPECT_EQ(p.branchProfiles[i].predictedTakenCorrect,
                  q.branchProfiles[i].predictedTakenCorrect);
    }
    ASSERT_EQ(artifact.trace.size(), again.trace.size());
    for (std::size_t i = 0; i < artifact.trace.size(); ++i) {
        EXPECT_EQ(artifact.trace[i].pc, again.trace[i].pc);
        EXPECT_EQ(artifact.trace[i].op, again.trace[i].op);
        EXPECT_EQ(artifact.trace[i].taken, again.trace[i].taken);
    }
}

TEST(ProfileIo, TracelessArtifactSupportsModelOnly)
{
    const std::string path =
        testing::TempDir() + "profile_io_notrace.mprof";

    DseStudy fresh(profileByName("qsort"), kLen);
    fresh.save(path, /*include_trace=*/false);
    DseStudy loaded = DseStudy::load(path);

    EXPECT_FALSE(loaded.hasTrace());
    EvalResult a = fresh.evaluate(defaultDesignPoint()).model();
    EvalResult b = loaded.evaluate(defaultDesignPoint()).model();
    EXPECT_EQ(a.cycles, b.cycles);
}

// ---- malformed input rejection ---------------------------------------------------

TEST(ProfileIo, RejectsBadMagic)
{
    std::string bytes = encodedArtifact();
    bytes[0] = 'X';
    EXPECT_THROW(decode(bytes), ProfileIoError);
}

TEST(ProfileIo, RejectsFutureVersion)
{
    std::string bytes = encodedArtifact();
    // The version is the little-endian u32 right after the magic.
    bytes[4] = static_cast<char>(kProfileFormatVersion + 1);
    EXPECT_THROW(decode(bytes), ProfileIoError);
}

TEST(ProfileIo, RejectsVersionZero)
{
    std::string bytes = encodedArtifact();
    bytes[4] = 0;
    EXPECT_THROW(decode(bytes), ProfileIoError);
}

TEST(ProfileIo, RejectsTruncation)
{
    const std::string &bytes = encodedArtifact();
    // Cut everywhere interesting: inside the header, inside each
    // section, and one byte short of complete.
    for (std::size_t cut :
         {std::size_t{0}, std::size_t{3}, std::size_t{6},
          std::size_t{16}, bytes.size() / 4, bytes.size() / 2,
          bytes.size() - 1}) {
        ASSERT_LT(cut, bytes.size());
        EXPECT_THROW(decode(bytes.substr(0, cut)), ProfileIoError)
            << "cut at " << cut;
    }
}

TEST(ProfileIo, RejectsTrailingCorruption)
{
    std::string bytes = encodedArtifact();
    // Damage the end marker: everything parses but the file cannot
    // be trusted.
    bytes[bytes.size() - 1] = '?';
    EXPECT_THROW(decode(bytes), ProfileIoError);
}

TEST(ProfileIo, MissingFileThrows)
{
    EXPECT_THROW(
        loadProfileArtifact(testing::TempDir() +
                            "profile_io_does_not_exist.mprof"),
        ProfileIoError);
}

TEST(ProfileIo, ArtifactPathJoinsDirAndName)
{
    EXPECT_EQ(profileArtifactPath("profiles", "sha"),
              "profiles/sha.mprof");
    EXPECT_EQ(profileArtifactPath("profiles/", "sha"),
              "profiles/sha.mprof");
}

} // namespace
