/**
 * @file
 * Unit tests for the profiling pass: dependency-distance measurement
 * (shortest-distance rule, producer classification), miss counting
 * against the cache hierarchy, branch statistics, and the captured-L2
 * resweep equivalence property.
 */

#include <gtest/gtest.h>

#include "profiler/profiler.hh"
#include "test_util.hh"
#include "workload/executor.hh"
#include "workload/suites.hh"

namespace mech {
namespace {

using test::TraceBuilder;

ProfilerConfig
tinyConfig()
{
    ProfilerConfig cfg;
    cfg.predictors = {PredictorKind::NotTaken};
    return cfg;
}

// ---- dependency measurement ----------------------------------------------------

TEST(ProfilerDeps, DistanceCountsDynamicInstructions)
{
    // producer r8; two fillers; consumer of r8 -> distance 3.
    Trace tr = TraceBuilder()
                   .alu(8)
                   .alu(9)
                   .alu(10)
                   .alu(11, 8)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).at(3), 1u);
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).total(), 1u);
}

TEST(ProfilerDeps, ShortestDistanceWins)
{
    // consumer reads r8 (distance 3) and r9 (distance 1): count one
    // entry at distance 1.
    Trace tr = TraceBuilder()
                   .alu(8)
                   .alu(10)
                   .alu(9)
                   .alu(11, 8, 9)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).at(1), 1u);
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).at(3), 0u);
}

TEST(ProfilerDeps, TieBreakPrefersLoad)
{
    // Load writes r8 and ALU writes r9 at the same distance: the
    // consumer entry lands in the load histogram.
    Trace tr = TraceBuilder()
                   .load(8, 0x10000000)
                   .alu(9)
                   .alu(11, 8, 9) // both at distance 2 and 1...
                   .build();
    // Rebuild precisely: load at distance 2, alu at distance 1 ->
    // shortest is the alu.  For the tie we need equal distances via
    // two sources written at the same position - impossible; instead
    // check: load at d=1, alu at d=1 cannot happen, so test priority
    // with distances equal by using a single dual-source consumer
    // whose producers sit at the same instruction? Registers are
    // written by distinct instructions, so a *true* tie cannot occur;
    // the rule only matters for equal distances measured from
    // different sources.  Verify the load classification itself:
    Trace tr2 = TraceBuilder()
                    .load(8, 0x10000000)
                    .alu(9, 8)
                    .build();
    WorkloadProfile p2 = profileTrace(tr2, tinyConfig());
    EXPECT_EQ(p2.program.deps.of(OpClass::Load).at(1), 1u);
    (void)tr;
}

TEST(ProfilerDeps, ProducerClassDecidesHistogram)
{
    Trace tr = TraceBuilder()
                   .op(OpClass::IntMult, 8)
                   .alu(9, 8)
                   .op(OpClass::FpDiv, 10)
                   .alu(11, 10)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.program.deps.of(OpClass::IntMult).at(1), 1u);
    EXPECT_EQ(p.program.deps.of(OpClass::FpDiv).at(1), 1u);
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).total(), 0u);
}

TEST(ProfilerDeps, OverwrittenProducerUsesLatestWriter)
{
    // r8 written twice; consumer distance measured to the second.
    Trace tr = TraceBuilder()
                   .alu(8)
                   .op(OpClass::IntMult, 8)
                   .alu(9, 8)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.program.deps.of(OpClass::IntMult).at(1), 1u);
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).total(), 0u);
}

TEST(ProfilerDeps, UnwrittenSourcesDontCount)
{
    Trace tr = TraceBuilder().alu(8, 0).alu(9, 1).build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    for (OpClass oc : kAllOpClasses)
        EXPECT_EQ(p.program.deps.of(oc).total(), 0u);
}

TEST(ProfilerDeps, BranchesAndStoresAreConsumers)
{
    Trace tr = TraceBuilder()
                   .alu(8)
                   .branch(false, 0, 8)
                   .alu(9)
                   .store(0x10000000, 9)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).at(1), 2u);
}

TEST(ProfilerDeps, MaxDistanceCapRespected)
{
    ProfilerConfig cfg = tinyConfig();
    cfg.maxDepDistance = 2;
    Trace tr = TraceBuilder()
                   .alu(8)
                   .alu(9)
                   .alu(10)
                   .alu(11, 8) // distance 3 > cap
                   .build();
    WorkloadProfile p = profileTrace(tr, cfg);
    EXPECT_EQ(p.program.deps.of(OpClass::IntAlu).total(), 0u);
}

// ---- mix and branch statistics ----------------------------------------------------

TEST(Profiler, MixCountsClasses)
{
    Trace tr = TraceBuilder()
                   .alu(8)
                   .op(OpClass::IntMult, 9)
                   .load(10, 0x10000000)
                   .store(0x10000040)
                   .branch(true)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.program.n, 5u);
    EXPECT_EQ(p.program.mix.of(OpClass::IntAlu), 1u);
    EXPECT_EQ(p.program.mix.of(OpClass::IntMult), 1u);
    EXPECT_EQ(p.program.mix.of(OpClass::Load), 1u);
    EXPECT_EQ(p.program.mix.of(OpClass::Store), 1u);
    EXPECT_EQ(p.program.mix.of(OpClass::Branch), 1u);
}

TEST(Profiler, BranchCounts)
{
    Trace tr = TraceBuilder()
                   .branch(true)
                   .branch(false)
                   .branch(true)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.program.branches, 3u);
    EXPECT_EQ(p.program.takenBranches, 2u);
    EXPECT_EQ(p.branchProfiles.size(), 1u);
    EXPECT_EQ(p.branchProfileFor(PredictorKind::NotTaken).mispredicts,
              2u);
}

// ---- memory statistics ----------------------------------------------------------------

TEST(ProfilerMemory, LoadClassification)
{
    // Two loads to the same line: first goes to memory, second hits
    // L1.  A load to a far line misses again.
    Trace tr = TraceBuilder()
                   .load(8, 0x10000000)
                   .load(9, 0x10000008)
                   .load(10, 0x10200000)
                   .build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.memory.loadMemory, 2u);
    EXPECT_EQ(p.memory.loadL2Hits, 0u);
    EXPECT_EQ(p.memory.loadMemoryIdx.size(), 2u);
    EXPECT_EQ(p.memory.loadMemoryIdx[0], 0u);
    EXPECT_EQ(p.memory.loadMemoryIdx[1], 2u);
}

TEST(ProfilerMemory, StoreMissesAreInformationalOnly)
{
    Trace tr = TraceBuilder().store(0x10000000).build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.memory.storeL1Misses, 1u);
    EXPECT_EQ(p.memory.loadMemory, 0u);
}

TEST(ProfilerMemory, TlbMissesCounted)
{
    TraceBuilder b;
    // 40 loads, each on its own page: thrashes the 32-entry D-TLB.
    for (int i = 0; i < 40; ++i)
        b.load(static_cast<RegIndex>(8 + i % 20),
               0x10000000 + static_cast<Addr>(i) * 4096);
    Trace tr = b.build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.memory.dtlbMisses, 40u);
    EXPECT_GE(p.memory.itlbMisses, 1u);
}

TEST(ProfilerMemory, IFetchMissesPerLine)
{
    // 32 sequential instructions = two 64B lines, cold.
    Trace tr = TraceBuilder().filler(32).build();
    WorkloadProfile p = profileTrace(tr, tinyConfig());
    EXPECT_EQ(p.memory.iFetchMemory, 2u);
    EXPECT_EQ(p.memory.iFetchL2Hits, 0u);
}

// ---- L2 stream capture and resweep ------------------------------------------------------

TEST(ProfilerResweep, SameGeometryReproducesCounts)
{
    Trace tr = generateTrace(profileByName("tiffmedian"), 30000);
    ProfilerConfig cfg;
    cfg.predictors = {PredictorKind::Gshare1K};
    cfg.captureL2Stream = true;
    WorkloadProfile p = profileTrace(tr, cfg);

    MemoryStats redo = resweepL2(p, cfg.hierarchy.l2);
    EXPECT_EQ(redo.loadL2Hits, p.memory.loadL2Hits);
    EXPECT_EQ(redo.loadMemory, p.memory.loadMemory);
    EXPECT_EQ(redo.iFetchL2Hits, p.memory.iFetchL2Hits);
    EXPECT_EQ(redo.iFetchMemory, p.memory.iFetchMemory);
    EXPECT_EQ(redo.loadMemoryIdx, p.memory.loadMemoryIdx);
}

TEST(ProfilerResweep, MatchesDirectProfilingAtOtherGeometry)
{
    // Replaying the captured stream into a different L2 must equal a
    // from-scratch profile with that L2 (the L2 input stream depends
    // only on the fixed L1s).
    Trace tr = generateTrace(profileByName("bzip2"), 30000);
    ProfilerConfig base;
    base.predictors = {PredictorKind::Gshare1K};
    base.captureL2Stream = true;
    WorkloadProfile captured = profileTrace(tr, base);

    CacheConfig small_l2{128 * 1024, 16, 64};
    MemoryStats swept = resweepL2(captured, small_l2);

    ProfilerConfig direct = base;
    direct.hierarchy.l2 = small_l2;
    WorkloadProfile reference = profileTrace(tr, direct);

    EXPECT_EQ(swept.loadL2Hits, reference.memory.loadL2Hits);
    EXPECT_EQ(swept.loadMemory, reference.memory.loadMemory);
    EXPECT_EQ(swept.iFetchL2Hits, reference.memory.iFetchL2Hits);
    EXPECT_EQ(swept.iFetchMemory, reference.memory.iFetchMemory);
}

TEST(ProfilerResweep, SmallerL2MissesMore)
{
    Trace tr = generateTrace(profileByName("gcc"), 40000);
    ProfilerConfig cfg;
    cfg.predictors = {PredictorKind::Gshare1K};
    cfg.captureL2Stream = true;
    WorkloadProfile p = profileTrace(tr, cfg);

    MemoryStats big = resweepL2(p, {1024 * 1024, 8, 64});
    MemoryStats small = resweepL2(p, {128 * 1024, 8, 64});
    EXPECT_GE(small.loadMemory, big.loadMemory);
}

// ---- whole-suite sanity -------------------------------------------------------------------

TEST(Profiler, DeterministicAcrossRuns)
{
    Trace tr = generateTrace(profileByName("sha"), 20000);
    WorkloadProfile a = profileTrace(tr, tinyConfig());
    WorkloadProfile b = profileTrace(tr, tinyConfig());
    EXPECT_EQ(a.program.n, b.program.n);
    EXPECT_EQ(a.memory.loadL2Hits, b.memory.loadL2Hits);
    EXPECT_EQ(a.program.deps.of(OpClass::IntAlu).total(),
              b.program.deps.of(OpClass::IntAlu).total());
}

} // namespace
} // namespace mech
