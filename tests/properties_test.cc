/**
 * @file
 * Cross-cutting property tests: model/simulator agreement on
 * idealized inputs, monotonicity across machine parameters, and
 * statistical behaviour of the workload's branch-condition streams.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace mech {
namespace {

using test::TraceBuilder;
using test::idealCycles;
using test::idealSim;

// ---- model == sim on hazard-free traces ------------------------------------

class ModelSimIdentity
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>>
{
};

TEST_P(ModelSimIdentity, HazardFreeTraceMatchesBaseTermExactly)
{
    auto [w, d] = GetParam();
    constexpr InstCount n = 4000;
    Trace tr = TraceBuilder().filler(n).build();

    SimResult sim = simulateInOrder(tr, idealSim(w, d));

    ProgramStats prog;
    prog.n = tr.size();
    prog.mix = tr.mix();
    MachineParams m;
    m.width = w;
    m.frontendDepth = d;
    ModelResult model =
        evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);

    // The model omits the pipeline-fill constant (D + 2 cycles);
    // everything else must agree exactly on an ideal trace.
    EXPECT_NEAR(model.cycles,
                static_cast<double>(sim.cycles) - (d + 2.0), w + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    WidthDepth, ModelSimIdentity,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(2u, 4u, 6u)));

TEST(ModelSimIdentity, SerialUnitChainMatchesAtAnyWidth)
{
    // A pure serial chain runs at 1 IPC in the simulator; the model's
    // unit-dependency penalty must land within a few percent.
    constexpr int n = 4000;
    TraceBuilder b;
    b.alu(8);
    for (int i = 1; i < n; ++i)
        b.alu(static_cast<RegIndex>(8 + i % 20),
              static_cast<RegIndex>(8 + (i - 1) % 20));
    Trace tr = b.build();

    for (std::uint32_t w : {2u, 4u}) {
        SimResult sim = simulateInOrder(tr, idealSim(w, 2));
        EXPECT_NEAR(sim.cpi(), 1.0, 0.01) << "W=" << w;

        ProgramStats prog;
        prog.n = tr.size();
        prog.mix = tr.mix();
        prog.deps.of(OpClass::IntAlu).add(1, n - 1);
        MachineParams m;
        m.width = w;
        ModelResult model =
            evaluateInOrder(prog, MemoryStats{}, BranchProfile{}, m);
        // Paper eq. 11 at d=1: CPI = 1/W + ((W-1)/W)^2 per dependent
        // instruction (n-1 of n) — an intentional first-order
        // approximation of the exact 1.0.
        double expected =
            1.0 / w + (w - 1.0) * (w - 1.0) / (double(w) * w) *
                          (n - 1.0) / n;
        EXPECT_NEAR(model.cpi(), expected, 1e-9);
    }
}

// ---- monotonicity properties over generated workloads -------------------------

class SimWidthMonotonic : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SimWidthMonotonic, CyclesNonIncreasingInWidth)
{
    Trace tr = generateTrace(profileByName(GetParam()), 20000);
    Cycles prev = ~Cycles{0};
    for (std::uint32_t w : {1u, 2u, 3u, 4u}) {
        DesignPoint p = defaultDesignPoint();
        p.width = w;
        SimResult res = simulateInOrder(tr, simConfigFor(p));
        EXPECT_LE(res.cycles, prev + prev / 100)
            << GetParam() << " at W=" << w;
        prev = res.cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, SimWidthMonotonic,
                         ::testing::Values("sha", "dijkstra", "gsm_c",
                                           "tiff2bw", "patricia"));

TEST(SimMonotonic, DeeperFrontEndNeverFaster)
{
    Trace tr = generateTrace(profileByName("qsort"), 20000);
    DesignPoint p = defaultDesignPoint();
    SimConfig shallow = simConfigFor(p);
    shallow.machine.frontendDepth = 2;
    SimConfig deep = simConfigFor(p);
    deep.machine.frontendDepth = 6;
    EXPECT_LE(simulateInOrder(tr, shallow).cycles,
              simulateInOrder(tr, deep).cycles);
}

TEST(ModelMonotonic, MispredictPenaltyGrowsWithDepth)
{
    EXPECT_LT(branchMissPenalty(2, 4), branchMissPenalty(4, 4));
    EXPECT_LT(branchMissPenalty(4, 4), branchMissPenalty(6, 4));
}

TEST(ModelMonotonic, TakenBubbleIndependentOfWidthAndDepth)
{
    ProgramStats prog;
    prog.n = 1000;
    prog.mix.counts[static_cast<std::size_t>(OpClass::IntAlu)] = 1000;
    prog.mix.total = 1000;
    BranchProfile bp;
    bp.predictedTakenCorrect = 77;
    for (std::uint32_t w : {1u, 2u, 4u}) {
        MachineParams m;
        m.width = w;
        m.frontendDepth = 2 + w;
        ModelResult res =
            evaluateInOrder(prog, MemoryStats{}, bp, m);
        EXPECT_DOUBLE_EQ(res.stack[CpiComponent::BpredTakenHit], 77.0);
    }
}

// ---- branch condition stream statistics ----------------------------------------

TEST(BranchStreams, PeriodicGuardTakenRatio)
{
    BenchmarkProfile p;
    p.name = "periodic-test";
    p.seed = 907;
    p.numLoops = 1;
    p.blocksPerLoop = 4;
    p.instrsPerBlock = 6;
    p.tripCount = 4096;
    p.guardFraction = 1.0;
    p.guardTakenBias = 0.25;
    p.hardBranchFraction = 0.0;
    p.correlatedFraction = 0.0;
    Trace tr = generateTrace(p, 60000);

    // Guards are Biased(0.25) or Periodic(period 4): either way the
    // aggregate taken ratio of guards should sit near 25%.
    std::uint64_t guards = 0, taken = 0;
    for (const auto &di : tr) {
        if (!isBranch(di.op))
            continue;
        // Back edges are nearly always taken; exclude them by their
        // very high taken rate per PC — simpler: count all branches
        // and check the mixture bound instead.
        ++guards;
        taken += di.taken;
    }
    // 4 guards (25% taken) + 1 back edge (~100% taken) per iteration:
    // expected aggregate ~ (4*0.25 + 1) / 5 = 0.4.
    double ratio = static_cast<double>(taken) / guards;
    EXPECT_NEAR(ratio, 0.4, 0.08);
}

TEST(BranchStreams, CorrelatedStreamsAreLearnableByHistory)
{
    BenchmarkProfile p;
    p.name = "correlated-test";
    p.seed = 911;
    p.numLoops = 1;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 8;
    p.tripCount = 4096;
    p.guardFraction = 1.0;
    p.hardBranchFraction = 0.0;
    p.correlatedFraction = 1.0;
    Trace tr = generateTrace(p, 60000);

    BranchProfiler prof(
        {PredictorKind::Bimodal, PredictorKind::Hybrid3K5});
    for (const auto &di : tr) {
        if (isBranch(di.op))
            prof.observe(di.pc, di.taken);
    }
    // History-based prediction must beat the history-less bimodal on
    // parity-correlated streams by a clear margin.
    EXPECT_LT(prof.profileFor(PredictorKind::Hybrid3K5).rate() + 0.05,
              prof.profileFor(PredictorKind::Bimodal).rate());
}

// ---- end-to-end determinism -----------------------------------------------------

TEST(Determinism, FullPipelineIsBitStable)
{
    DseStudy a(profileByName("susan_e"), 15000);
    DseStudy b(profileByName("susan_e"), 15000);
    DesignPoint p = defaultDesignPoint();
    p.width = 3;
    const BackendSet backends = backendSet("model,sim");
    PointEvaluation ea = a.evaluate(p, backends);
    PointEvaluation eb = b.evaluate(p, backends);
    EXPECT_DOUBLE_EQ(ea.model().cycles, eb.model().cycles);
    EXPECT_EQ(ea.sim()->detail->cycles, eb.sim()->detail->cycles);
    EXPECT_DOUBLE_EQ(ea.model().edp, eb.model().edp);
}

} // namespace
} // namespace mech
