/**
 * @file
 * End-to-end guarantees of the search engine:
 *
 *  - golden equivalence: exhaustive search over the Table 2 spec
 *    reproduces the existing StudyRunner results exactly (bitwise
 *    CPI and EDP per point) and lands on the same model-side
 *    EDP-optimal configuration Fig. 9's workflow picks;
 *  - determinism: the same seed and budget produce bit-identical
 *    search JSON at 1, 2 and 8 worker threads, for every strategy;
 *  - cache semantics: revisits are hits, fresh evaluations respect
 *    the budget, and every strategy reports its traffic.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dse/design_space.hh"
#include "dse/study_runner.hh"
#include "search/report.hh"
#include "search/strategy.hh"
#include "workload/suites.hh"

namespace mech {
namespace {

constexpr InstCount kLen = 20000;

/** A fresh evaluator over @p benches with @p objective_csv. */
SearchEvaluator
makeEvaluator(const std::vector<std::string> &benches,
              const std::string &objective_csv)
{
    std::vector<BenchmarkProfile> profiles;
    for (const std::string &name : benches)
        profiles.push_back(profileByName(name));
    return SearchEvaluator(std::move(profiles), kLen,
                           parseObjectives(objective_csv));
}

TEST(SearchGolden, ExhaustiveTable2MatchesStudyRunnerExactly)
{
    const std::string bench = "gsm_c";

    // The pre-existing path: StudyRunner over the eager 192-point
    // list.
    StudyRunner runner({profileByName(bench)}, kLen);
    auto space = table2Space();
    auto runner_results = runner.evaluateAll(space, 1);
    ASSERT_EQ(runner_results[0].evals.size(), space.size());

    // The new path: exhaustive search over the table2 spec with
    // cpi + edp objectives.
    SearchEvaluator evaluator = makeEvaluator({bench}, "cpi,edp");
    SearchOptions opts;
    opts.budget = 0; // unlimited: the whole space
    opts.threads = 2;
    SearchResult result =
        runSearch(SpaceSpec::table2(), "exhaustive", evaluator, opts);

    ASSERT_EQ(result.evaluated.size(), space.size());
    EXPECT_EQ(result.stats.misses, space.size());
    EXPECT_EQ(result.stats.hits, 0u);
    for (std::size_t i = 0; i < space.size(); ++i) {
        const SearchEval &eval = *result.evaluated[i];
        const EvalResult &model = runner_results[0].evals[i].model();
        // Same enumeration order, bitwise-equal model numbers.
        EXPECT_TRUE(eval.point == space[i]) << "index " << i;
        EXPECT_EQ(eval.aggregate[0], model.cpi()) << "index " << i;
        EXPECT_EQ(eval.aggregate[1], model.edp) << "index " << i;
    }
}

TEST(SearchGolden, ExhaustiveFindsTheFig9EdpOptimalPoint)
{
    // Fig. 9's workflow: the model ranks the Table 2 space by EDP
    // and picks the optimum.  The search engine must land on the
    // same configuration the direct argmin over StudyRunner results
    // produces.
    for (const std::string bench : {"adpcm_d", "gsm_c"}) {
        StudyRunner runner({profileByName(bench)}, kLen);
        auto space = table2Space();
        auto evals =
            std::move(runner.evaluateAll(space, 1).at(0).evals);
        std::size_t argmin = 0;
        for (std::size_t i = 1; i < evals.size(); ++i) {
            if (evals[i].model().edp < evals[argmin].model().edp)
                argmin = i;
        }

        SearchEvaluator evaluator = makeEvaluator({bench}, "edp");
        SearchOptions opts;
        opts.budget = 0;
        SearchResult result = runSearch(SpaceSpec::table2(),
                                        "exhaustive", evaluator, opts);
        EXPECT_TRUE(result.best().point == evals[argmin].point)
            << bench << ": search picked "
            << result.best().point.label() << ", argmin is "
            << evals[argmin].point.label();
        // With a single scalar objective the frontier is exactly the
        // set of optimal points.
        for (std::size_t idx : result.frontier) {
            EXPECT_EQ(result.evaluated[idx]->aggregate[0],
                      evals[argmin].model().edp);
        }
    }
}

TEST(SearchGolden, EveryStrategyIsBitIdenticalAcrossThreadCounts)
{
    // ~640-point space, multi-objective, two benchmarks — big enough
    // that batches actually shard, small enough to stay fast.
    SpaceSpec spec = SpaceSpec::parse(
        "l2kb=128,256,512,1024;assoc=8,16;depth=5@0.6,7@0.8,9@1.0;"
        "width=1:4;pred=gshare1k,hybrid3k5");
    SearchEvaluator evaluator =
        makeEvaluator({"sha", "dijkstra"}, "edp,cpi");

    for (const std::string strategy :
         {"exhaustive", "random", "hillclimb", "genetic"}) {
        SearchOptions opts;
        opts.seed = 7;
        opts.budget = 150;
        opts.population = 12;

        std::string first_json;
        for (unsigned threads : {1u, 2u, 8u}) {
            opts.threads = threads;
            SearchResult result =
                runSearch(spec, strategy, evaluator, opts);
            std::ostringstream json;
            writeSearchResultJson(result, json);
            if (threads == 1u) {
                first_json = json.str();
                EXPECT_FALSE(result.frontier.empty()) << strategy;
            } else {
                EXPECT_EQ(json.str(), first_json)
                    << strategy << " diverged at " << threads
                    << " threads";
            }
        }
    }
}

TEST(SearchGolden, IterativeStrategiesHitTheMemoizedCache)
{
    SpaceSpec spec = SpaceSpec::parse(
        "l2kb=128,256;assoc=8;depth=5@0.6,9@1.0;width=1:4;"
        "pred=gshare1k,hybrid3k5");
    SearchEvaluator evaluator = makeEvaluator({"sha"}, "edp");

    for (const std::string strategy :
         {"random", "hillclimb", "genetic"}) {
        SearchOptions opts;
        opts.seed = 3;
        opts.budget = 40;
        opts.population = 8;
        opts.threads = 1;
        SearchResult result =
            runSearch(spec, strategy, evaluator, opts);
        // Revisits cost zero fresh evaluations and are reported.
        EXPECT_GT(result.stats.hits, 0u) << strategy;
        EXPECT_EQ(result.stats.requested,
                  result.stats.hits + result.stats.misses)
            << strategy;
        EXPECT_EQ(result.evaluated.size(), result.stats.misses)
            << strategy;
        // The budget bounds fresh evaluations (the space has only 32
        // points, so it binds before the budget here).
        EXPECT_LE(result.stats.misses, 40u) << strategy;
        EXPECT_FALSE(result.frontier.empty()) << strategy;
    }
}

TEST(SearchGolden, BudgetBoundsFreshEvaluations)
{
    SearchEvaluator evaluator = makeEvaluator({"sha"}, "edp");
    SearchOptions opts;
    opts.seed = 11;
    opts.budget = 100;
    opts.threads = 2;
    opts.population = 16;
    for (const std::string strategy : {"random", "genetic"}) {
        SearchResult result = runSearch(SpaceSpec::wide(), strategy,
                                        evaluator, opts);
        // One batch of overshoot at most (genetic evaluates whole
        // populations; random caps batches at the remaining budget).
        EXPECT_GE(result.stats.misses, 90u) << strategy;
        EXPECT_LE(result.stats.misses, 100u + opts.population)
            << strategy;
    }
}

TEST(SearchGolden, HillclimbImprovesOnItsStartingPoints)
{
    // Not a statistical claim — just that the best found is at least
    // as good as every evaluated point (internal consistency) and
    // the scalar best agrees with a linear scan.
    SearchEvaluator evaluator = makeEvaluator({"qsort"}, "edp");
    SearchOptions opts;
    opts.seed = 5;
    opts.budget = 120;
    opts.threads = 1;
    SearchResult result = runSearch(SpaceSpec::wide(), "hillclimb",
                                    evaluator, opts);
    const double best = result.best().aggregate[0];
    for (const SearchEval *eval : result.evaluated)
        EXPECT_GE(eval->aggregate[0], best);
}

} // namespace
} // namespace mech
