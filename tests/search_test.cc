/**
 * @file
 * Unit tests for the search subsystem's building blocks: DesignPoint
 * identity (hash/key round trips, collision-freedom over the Table 2
 * grid), the SpaceSpec grammar and enumeration order, objectives,
 * Pareto machinery and the memoized evaluation cache.
 */

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dse/design_space.hh"
#include "search/eval_cache.hh"
#include "search/objective.hh"
#include "search/pareto.hh"
#include "search/space_spec.hh"

namespace mech {
namespace {

// ---- DesignPoint identity -------------------------------------------------

TEST(DesignPointIdentity, EqualityIsFieldWise)
{
    DesignPoint a = defaultDesignPoint();
    DesignPoint b = a;
    EXPECT_TRUE(a == b);
    b.width = 2;
    EXPECT_FALSE(a == b);
    b = a;
    b.predictor = PredictorKind::Hybrid3K5;
    EXPECT_FALSE(a == b);
    b = a;
    b.freqGHz = 0.8;
    EXPECT_FALSE(a == b);
}

TEST(DesignPointIdentity, HashIsStableAcrossRuns)
{
    // Pinned value: the FNV-1a encoding is part of the identity
    // contract (cache keys, future persistent artifacts).  If this
    // changes, the hash function changed — bump deliberately.
    // Bumped when the out-of-order structures (OooParams) joined the
    // point identity.
    EXPECT_EQ(defaultDesignPoint().hash(), 0xa03eddb554f747adull);
    EXPECT_EQ(defaultDesignPoint().hash(), defaultDesignPoint().hash());
}

TEST(DesignPointIdentity, HashCollisionFreeOverTable2Grid)
{
    std::set<std::uint64_t> hashes;
    for (const DesignPoint &p : table2Space())
        hashes.insert(p.hash());
    EXPECT_EQ(hashes.size(), 192u);
}

TEST(DesignPointIdentity, EqualPointsHashEqual)
{
    for (const DesignPoint &p : table2Space()) {
        DesignPoint copy = p;
        EXPECT_EQ(copy.hash(), p.hash());
    }
}

TEST(DesignPointIdentity, KeyRoundTripsOverTable2Grid)
{
    std::set<std::string> keys;
    for (const DesignPoint &p : table2Space()) {
        std::string key = p.toKey();
        keys.insert(key);
        auto back = DesignPoint::fromKey(key);
        ASSERT_TRUE(back.has_value()) << key;
        EXPECT_TRUE(*back == p) << key;
    }
    EXPECT_EQ(keys.size(), 192u);
}

TEST(DesignPointIdentity, KeyRoundTripsAwkwardFrequencies)
{
    DesignPoint p = defaultDesignPoint();
    for (double freq : {0.6, 0.8, 1.0, 1.2, 1.7999999999999998,
                        0.3333333333333333}) {
        p.freqGHz = freq;
        auto back = DesignPoint::fromKey(p.toKey());
        ASSERT_TRUE(back.has_value()) << p.toKey();
        EXPECT_EQ(back->freqGHz, freq) << p.toKey();
    }
}

TEST(DesignPointIdentity, FromKeyRejectsMalformedInput)
{
    EXPECT_FALSE(DesignPoint::fromKey("").has_value());
    EXPECT_FALSE(DesignPoint::fromKey("l2kb=512").has_value());
    EXPECT_FALSE(DesignPoint::fromKey("nonsense").has_value());
    EXPECT_FALSE(
        DesignPoint::fromKey(
            "l2kb=512,assoc=8,depth=9,freq=1,width=4,pred=bogus")
            .has_value());
    EXPECT_FALSE(
        DesignPoint::fromKey(
            "l2kb=512,assoc=8,depth=9,freq=-1,width=4,pred=gshare1k")
            .has_value());
    EXPECT_FALSE(
        DesignPoint::fromKey(
            "l2kb=512,assoc=8,depth=9,freq=inf,width=4,pred=gshare1k")
            .has_value());
    EXPECT_FALSE(
        DesignPoint::fromKey("l2kb=512,assoc=8,depth=9,freq=1,"
                             "width=4,pred=gshare1k,bogus=1")
            .has_value());
    // A repeated field is malformed, not a last-one-wins update.
    EXPECT_FALSE(
        DesignPoint::fromKey("l2kb=128,l2kb=256,assoc=8,depth=9,"
                             "freq=1,width=4,pred=gshare1k")
            .has_value());
    // 2^32+8 must be rejected, not silently truncated to 8.
    EXPECT_FALSE(
        DesignPoint::fromKey("l2kb=512,assoc=4294967304,depth=9,"
                             "freq=1,width=4,pred=gshare1k")
            .has_value());
}

TEST(DesignPointIdentity, PredictorKeysRoundTrip)
{
    for (PredictorKind kind :
         {PredictorKind::NotTaken, PredictorKind::Taken,
          PredictorKind::Bimodal, PredictorKind::Gshare1K,
          PredictorKind::Local, PredictorKind::Hybrid3K5}) {
        auto back = predictorFromKey(predictorKey(kind));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
        // Display names resolve too.
        EXPECT_EQ(predictorFromKey(predictorName(kind)), kind);
    }
    EXPECT_FALSE(predictorFromKey("perceptron").has_value());
}

TEST(DesignPointIdentity, OooFieldsJoinEqualityKeyAndHash)
{
    DesignPoint a = defaultDesignPoint();
    DesignPoint b = a;
    b.ooo.robSize = 64;
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.hash(), b.hash());

    // A default point serializes without out-of-order fields, so keys
    // minted before OooParams joined the identity still round trip.
    EXPECT_EQ(a.toKey().find("rob="), std::string::npos);
    auto back = DesignPoint::fromKey(a.toKey());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == a);

    // Non-default fields serialize and round trip exactly.
    b.ooo.iqSize = 16;
    b.ooo.fuMul = 2;
    b.ooo.resultBuses = 8;
    std::string key = b.toKey();
    EXPECT_NE(key.find("rob=64"), std::string::npos);
    back = DesignPoint::fromKey(key);
    ASSERT_TRUE(back.has_value()) << key;
    EXPECT_TRUE(*back == b) << key;
    EXPECT_FALSE(DesignPoint::fromKey(key + ",rob=64").has_value());
}

// ---- SpaceSpec ------------------------------------------------------------

TEST(SpaceSpec, Table2PresetMatchesTable2SpaceExactly)
{
    SpaceSpec spec = SpaceSpec::table2();
    auto grid = table2Space();
    ASSERT_EQ(spec.size(), grid.size());
    for (std::uint64_t i = 0; i < spec.size(); ++i)
        EXPECT_TRUE(spec.at(i) == grid[i]) << "index " << i;
}

TEST(SpaceSpec, WidePresetIsLargeAndValid)
{
    SpaceSpec spec = SpaceSpec::wide();
    EXPECT_GE(spec.size(), 10000u);
    // Spot-check the extremes enumerate into valid machine configs.
    machineFor(spec.at(0));
    machineFor(spec.at(spec.size() - 1));
}

TEST(SpaceSpec, DigitsRoundTrip)
{
    SpaceSpec spec = SpaceSpec::wide();
    for (std::uint64_t i : {std::uint64_t(0), std::uint64_t(1),
                            spec.size() / 2, spec.size() - 1}) {
        auto digits = spec.digitsOf(i);
        EXPECT_TRUE(spec.fromDigits(digits) == spec.at(i));
    }
}

TEST(SpaceSpec, GrammarListsRangesAndSteps)
{
    SpaceSpec spec = SpaceSpec::parse(
        "l2kb=128:1024:*2; assoc=8,16; depth=5@0.6,9@1.0; "
        "width=1:4; pred=gshare1k");
    EXPECT_EQ(spec.l2KB, (std::vector<std::uint64_t>{128, 256, 512,
                                                     1024}));
    EXPECT_EQ(spec.l2Assoc, (std::vector<std::uint32_t>{8, 16}));
    ASSERT_EQ(spec.depthFreq.size(), 2u);
    EXPECT_EQ(spec.depthFreq[0].depth, 5u);
    EXPECT_EQ(spec.depthFreq[0].freqGHz, 0.6);
    EXPECT_EQ(spec.width, (std::vector<std::uint32_t>{1, 2, 3, 4}));
    EXPECT_EQ(spec.predictor,
              (std::vector<PredictorKind>{PredictorKind::Gshare1K}));
    EXPECT_EQ(spec.size(), 4u * 2 * 2 * 4 * 1);
}

TEST(SpaceSpec, GrammarAdditiveStepAndDefaults)
{
    // Only the width axis given: everything else defaults to the
    // Table 2 default point.
    SpaceSpec spec = SpaceSpec::parse("width=2:6:+2");
    EXPECT_EQ(spec.width, (std::vector<std::uint32_t>{2, 4, 6}));
    EXPECT_EQ(spec.size(), 3u);
    DesignPoint def = defaultDesignPoint();
    EXPECT_EQ(spec.at(0).l2KB, def.l2KB);
    EXPECT_EQ(spec.at(0).predictor, def.predictor);
}

TEST(SpaceSpec, TryParseRejectsBadInput)
{
    std::string error;
    EXPECT_FALSE(SpaceSpec::tryParse("bogus_axis=1", &error));
    EXPECT_NE(error.find("unknown axis"), std::string::npos);
    EXPECT_FALSE(SpaceSpec::tryParse("width=4:1", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("width=1:4:*1", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("depth=9", &error));
    EXPECT_NE(error.find("frequency"), std::string::npos);
    // 2^32+5 must be rejected, not silently truncated to depth 5.
    EXPECT_FALSE(SpaceSpec::tryParse("depth=4294967301@1.0", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("pred=alpha21264", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("width=0", &error));
    // Non-finite frequencies would make delay 0 and dominate every
    // real point.
    EXPECT_FALSE(SpaceSpec::tryParse("depth=9@inf", &error));
    EXPECT_NE(error.find("finite"), std::string::npos);
    EXPECT_FALSE(SpaceSpec::tryParse("depth=9@nan", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("l2kb=100", &error));
    EXPECT_NE(error.find("power of two"), std::string::npos);
    EXPECT_FALSE(SpaceSpec::tryParse("width=2,2", &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
    // 1 KiB cannot hold even one 64-way set of 64 B lines.
    EXPECT_FALSE(SpaceSpec::tryParse("l2kb=1;assoc=64", &error));
}

TEST(SpaceSpec, DescribeReparsesToSameSpace)
{
    for (const SpaceSpec &spec :
         {SpaceSpec::table2(), SpaceSpec::wide()}) {
        SpaceSpec again = SpaceSpec::parse(spec.describe());
        ASSERT_EQ(again.size(), spec.size());
        for (std::uint64_t i : {std::uint64_t(0), spec.size() - 1})
            EXPECT_TRUE(again.at(i) == spec.at(i));
        EXPECT_EQ(again.describe(), spec.describe());
    }
}

TEST(SpaceSpec, GrammarOooAxes)
{
    SpaceSpec spec =
        SpaceSpec::parse("width=1,2; rob=32,64; buses=2");
    EXPECT_EQ(spec.robSize, (std::vector<std::uint32_t>{32, 64}));
    EXPECT_EQ(spec.resultBuses, (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(spec.size(), 4u);
    // The out-of-order axes are least significant: rob varies faster
    // than width.
    EXPECT_EQ(spec.at(0).width, 1u);
    EXPECT_EQ(spec.at(0).ooo.robSize, 32u);
    EXPECT_EQ(spec.at(1).width, 1u);
    EXPECT_EQ(spec.at(1).ooo.robSize, 64u);
    EXPECT_EQ(spec.at(2).width, 2u);
    EXPECT_EQ(spec.at(2).ooo.robSize, 32u);
    // Unmentioned out-of-order axes carry the defaults.
    OooParams def;
    EXPECT_EQ(spec.at(0).ooo.iqSize, def.iqSize);
    EXPECT_EQ(spec.at(0).ooo.fuAlu, def.fuAlu);
    EXPECT_TRUE(spec.hasOooAxes());
}

TEST(SpaceSpec, OooAxesDefaultSilently)
{
    // Presets and specs that never mention an out-of-order axis keep
    // their pre-OoO size, enumeration order and description.
    OooParams def;
    for (const SpaceSpec &spec :
         {SpaceSpec::table2(), SpaceSpec::parse("width=1:4")}) {
        EXPECT_FALSE(spec.hasOooAxes());
        EXPECT_EQ(spec.describe().find("rob="), std::string::npos);
        EXPECT_EQ(spec.at(0).ooo.robSize, def.robSize);
        EXPECT_EQ(spec.at(0).ooo.resultBuses, def.resultBuses);
    }
    // Pinning an axis to its default value still counts as sweeping
    // it: the caller asked for the axis, so backend checks apply.
    EXPECT_TRUE(SpaceSpec::parse("rob=64").hasOooAxes());
    EXPECT_FALSE(SpaceSpec::parse("rob=128").hasOooAxes());
}

TEST(SpaceSpec, TryParseRejectsBadOooInput)
{
    std::string error;
    EXPECT_FALSE(SpaceSpec::tryParse("rob=0", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("rob=8192", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("iq=0", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("iq=8192", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("fualu=0", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("fualu=100", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("fumem=0", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("buses=0", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("buses=100", &error));
    EXPECT_FALSE(SpaceSpec::tryParse("rob=64,64", &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
    // A ROB narrower than the widest machine cannot sustain dispatch.
    EXPECT_FALSE(SpaceSpec::tryParse("width=4; rob=2", &error));
    EXPECT_NE(error.find("width"), std::string::npos);
}

TEST(SpaceSpec, DescribeReparsesOooAxes)
{
    SpaceSpec spec = SpaceSpec::parse(
        "width=1,2; rob=64:256:*2; iq=16,32; buses=2,8");
    SpaceSpec again = SpaceSpec::parse(spec.describe());
    ASSERT_EQ(again.size(), spec.size());
    for (std::uint64_t i : {std::uint64_t(0), spec.size() - 1})
        EXPECT_TRUE(again.at(i) == spec.at(i));
    EXPECT_EQ(again.describe(), spec.describe());
}

// ---- Objectives -----------------------------------------------------------

TEST(Objectives, CatalogueAndLookup)
{
    EXPECT_GE(allObjectives().size(), 6u);
    auto edp = objectiveByName("edp");
    ASSERT_TRUE(edp.has_value());
    EXPECT_FALSE(edp->maximize);
    auto bips = objectiveByName("bips");
    ASSERT_TRUE(bips.has_value());
    EXPECT_TRUE(bips->maximize);
    EXPECT_FALSE(objectiveByName("mips").has_value());
}

TEST(Objectives, NormalizedFoldsDirection)
{
    auto edp = *objectiveByName("edp");
    auto bips = *objectiveByName("bips");
    // Minimize: unchanged.  Maximize: negated, so lower is better.
    EXPECT_EQ(edp.normalized(2.0), 2.0);
    EXPECT_EQ(bips.normalized(2.0), -2.0);
}

TEST(Objectives, ValuesAreConsistentWithEvalResult)
{
    EvalResult res;
    res.cycles = 2e6;
    res.instructions = 1e6;
    res.energy.coreDynamicJ = 3e-3;
    res.edp = 42.0;
    DesignPoint point = defaultDesignPoint(); // 1 GHz
    EXPECT_DOUBLE_EQ(objectiveByName("cpi")->value(res, point), 2.0);
    EXPECT_DOUBLE_EQ(objectiveByName("cycles")->value(res, point),
                     2e6);
    EXPECT_DOUBLE_EQ(objectiveByName("delay")->value(res, point),
                     2e-3);
    EXPECT_DOUBLE_EQ(objectiveByName("bips")->value(res, point), 0.5);
    EXPECT_DOUBLE_EQ(objectiveByName("energy")->value(res, point),
                     3e-3);
    EXPECT_DOUBLE_EQ(objectiveByName("edp")->value(res, point), 42.0);
    EXPECT_DOUBLE_EQ(objectiveByName("ed2p")->value(res, point),
                     3e-3 * 2e-3 * 2e-3);
}

// ---- Pareto ---------------------------------------------------------------

TEST(Pareto, DominanceBasics)
{
    EXPECT_TRUE(dominates({1, 1}, {2, 2}));
    EXPECT_TRUE(dominates({1, 2}, {2, 2}));
    EXPECT_FALSE(dominates({1, 3}, {2, 2}));
    EXPECT_FALSE(dominates({2, 2}, {2, 2})); // equal: no domination
}

TEST(Pareto, FrontierOfClassicStaircase)
{
    // Rows 0, 2, 4 form the frontier; 1 and 3 are dominated.
    std::vector<std::vector<double>> costs = {
        {1, 5}, {2, 6}, {2, 3}, {4, 4}, {5, 1},
    };
    EXPECT_EQ(paretoFrontier(costs),
              (std::vector<std::size_t>{0, 2, 4}));
}

TEST(Pareto, SingleObjectiveFrontierIsTheMinimum)
{
    std::vector<std::vector<double>> costs = {{3}, {1}, {2}, {1}};
    // Both copies of the minimum survive (neither dominates the
    // other).
    EXPECT_EQ(paretoFrontier(costs),
              (std::vector<std::size_t>{1, 3}));
}

TEST(Pareto, NonDominatedSortLayers)
{
    std::vector<std::vector<double>> costs = {
        {1, 5}, {5, 1}, {2, 6}, {6, 2}, {3, 7},
    };
    auto fronts = nonDominatedSort(costs);
    ASSERT_EQ(fronts.size(), 3u);
    EXPECT_EQ(fronts[0], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(fronts[1], (std::vector<std::size_t>{2, 3}));
    EXPECT_EQ(fronts[2], (std::vector<std::size_t>{4}));
    // Every index appears exactly once.
    std::size_t total = 0;
    for (const auto &front : fronts)
        total += front.size();
    EXPECT_EQ(total, costs.size());
}

TEST(Pareto, CrowdingBoundariesAreInfinite)
{
    std::vector<std::vector<double>> costs = {
        {1, 5}, {2, 3}, {3, 2}, {5, 1},
    };
    std::vector<std::size_t> front = {0, 1, 2, 3};
    auto crowd = crowdingDistances(costs, front);
    EXPECT_TRUE(std::isinf(crowd[0]));
    EXPECT_TRUE(std::isinf(crowd[3]));
    EXPECT_GT(crowd[1], 0.0);
    EXPECT_FALSE(std::isinf(crowd[1]));
    EXPECT_GT(crowd[2], 0.0);
}

// ---- EvalCache ------------------------------------------------------------

TEST(EvalCache, InsertFindAndEntryOrder)
{
    EvalCache cache;
    auto grid = table2Space();
    EXPECT_EQ(cache.find(grid[0]), nullptr);

    for (int i = 0; i < 3; ++i) {
        SearchEval eval;
        eval.point = grid[static_cast<std::size_t>(i)];
        eval.aggregate = {static_cast<double>(i)};
        const SearchEval &stored = cache.insert(std::move(eval));
        EXPECT_EQ(stored.firstIndex, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(cache.size(), 3u);

    const SearchEval *hit = cache.find(grid[1]);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->aggregate[0], 1.0);
    EXPECT_TRUE(hit->point == grid[1]);

    auto entries = cache.entries();
    ASSERT_EQ(entries.size(), 3u);
    for (std::size_t i = 0; i < entries.size(); ++i)
        EXPECT_EQ(entries[i]->firstIndex, i);
}

TEST(EvalCache, DuplicateInsertReturnsTheExistingEntry)
{
    // A point re-discovered concurrently (two serve sessions, or a
    // strategy racing itself across flushes) is benign: the second
    // insert must hand back the first entry, not assert or shadow it.
    EvalCache cache;
    auto grid = table2Space();

    SearchEval first;
    first.point = grid[0];
    first.aggregate = {1.0};
    const SearchEval &stored = cache.insert(std::move(first));
    EXPECT_EQ(stored.firstIndex, 0u);

    SearchEval dup;
    dup.point = grid[0];
    dup.aggregate = {2.0};
    const SearchEval &again = cache.insert(std::move(dup));

    EXPECT_EQ(&again, &stored);
    EXPECT_EQ(again.aggregate[0], 1.0);
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_EQ(cache.entries().size(), 1u);
    EXPECT_EQ(cache.entries()[0], &stored);

    // A different point still gets the next firstIndex.
    SearchEval other;
    other.point = grid[1];
    other.aggregate = {3.0};
    EXPECT_EQ(cache.insert(std::move(other)).firstIndex, 1u);
    EXPECT_EQ(cache.size(), 2u);
}

} // namespace
} // namespace mech
