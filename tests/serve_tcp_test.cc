/**
 * @file
 * Tests for the concurrent serve front end: AdmissionQueue bounds and
 * fairness, the in-process epoll TcpServer (pipelining, dispatcher
 * byte-identity, overload shedding, graceful drain), the warm-cache
 * restart path, and frontierResponse equivalence between the
 * in-process batch path and a mech_shard-style scatter-gather.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"
#include "obs/registry.hh"
#include "search/space_spec.hh"
#include "serve/admission.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/shard.hh"

namespace mech::serve {
namespace {

constexpr InstCount kTraceLen = 10000;

ServeConfig
testConfig(unsigned threads = 1)
{
    ServeConfig cfg;
    cfg.traceLen = kTraceLen;
    cfg.threads = threads;
    cfg.defaultBench = {"jpeg_c"};
    return cfg;
}

QueuedLine
line(const std::string &text)
{
    return QueuedLine{text, std::chrono::steady_clock::now()};
}

std::string
evalLine(int id, const DesignPoint &point)
{
    return "{\"id\": " + std::to_string(id) +
           ", \"type\": \"eval\", \"point\": \"" + point.toKey() +
           "\"}";
}

// ---------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------

TEST(Admission, GlobalQueueBoundSheds)
{
    AdmissionConfig cfg;
    cfg.maxQueue = 3;
    cfg.maxInflight = 100;
    AdmissionQueue q(cfg);
    q.addSession(1);
    EXPECT_TRUE(q.offer(1, line("a")));
    EXPECT_TRUE(q.offer(1, line("b")));
    EXPECT_TRUE(q.offer(1, line("c")));
    EXPECT_FALSE(q.offer(1, line("d"))) << "queue bound ignored";
    EXPECT_EQ(q.pending(), 3u);
}

TEST(Admission, PerSessionBoundLeavesRoomForOthers)
{
    AdmissionConfig cfg;
    cfg.maxQueue = 100;
    cfg.maxInflight = 2;
    AdmissionQueue q(cfg);
    q.addSession(1);
    q.addSession(2);
    EXPECT_TRUE(q.offer(1, line("a")));
    EXPECT_TRUE(q.offer(1, line("b")));
    EXPECT_FALSE(q.offer(1, line("c"))) << "session bound ignored";
    EXPECT_TRUE(q.offer(2, line("x")))
        << "one greedy session starved another";
}

TEST(Admission, ForceBypassesBoundsButNotStop)
{
    AdmissionConfig cfg;
    cfg.maxQueue = 1;
    AdmissionQueue q(cfg);
    q.addSession(1);
    EXPECT_TRUE(q.offer(1, line("a")));
    EXPECT_FALSE(q.offer(1, line("b")));
    EXPECT_TRUE(q.force(1, line("stats"))) << "control line shed";
    q.stop();
    EXPECT_FALSE(q.force(1, line("late")))
        << "force admitted after stop";
    EXPECT_FALSE(q.offer(1, line("late")));
}

TEST(Admission, RoundRobinAcrossSessions)
{
    AdmissionConfig cfg;
    cfg.maxBatch = 1;
    AdmissionQueue q(cfg);
    q.addSession(1);
    q.addSession(2);
    ASSERT_TRUE(q.offer(1, line("a1")));
    ASSERT_TRUE(q.offer(1, line("a2")));
    ASSERT_TRUE(q.offer(2, line("b1")));
    ASSERT_TRUE(q.offer(2, line("b2")));

    // Session 1 armed first, but after its batch completes session 2
    // goes next — a deep session cannot monopolize the dispatchers.
    std::vector<std::uint64_t> order;
    AdmissionQueue::Batch batch;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(q.nextBatch(&batch));
        order.push_back(batch.sid);
        ASSERT_EQ(batch.lines.size(), 1u);
        q.completed(batch.sid);
    }
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 1, 2}));
    EXPECT_EQ(q.pending(), 0u);
}

TEST(Admission, OneBatchInFlightPerSession)
{
    AdmissionConfig cfg;
    cfg.maxBatch = 2;
    AdmissionQueue q(cfg);
    q.addSession(1);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.offer(1, line("l" + std::to_string(i))));

    AdmissionQueue::Batch batch;
    ASSERT_TRUE(q.nextBatch(&batch));
    EXPECT_EQ(batch.lines.size(), 2u);

    // With the session's only batch in flight nothing is dispatchable:
    // a second nextBatch() must block until completed() re-arms it.
    std::atomic<bool> got{false};
    std::thread waiter([&] {
        AdmissionQueue::Batch next;
        if (q.nextBatch(&next))
            got.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(got.load())
        << "two batches of one session in flight at once";
    q.completed(1);
    waiter.join();
    EXPECT_TRUE(got.load());
}

TEST(Admission, StopDrainsAdmittedLinesThenReleases)
{
    AdmissionConfig cfg;
    cfg.maxBatch = 64;
    AdmissionQueue q(cfg);
    q.addSession(1);
    ASSERT_TRUE(q.offer(1, line("a")));
    ASSERT_TRUE(q.offer(1, line("b")));
    q.stop();

    AdmissionQueue::Batch batch;
    ASSERT_TRUE(q.nextBatch(&batch)) << "admitted lines dropped";
    EXPECT_EQ(batch.lines.size(), 2u);
    q.completed(1);
    EXPECT_FALSE(q.nextBatch(&batch)) << "drained queue still blocks";
}

TEST(Admission, HoldFreezesDispatchUntilReleased)
{
    AdmissionQueue q({});
    q.addSession(1);
    q.holdDispatch(true);
    ASSERT_TRUE(q.offer(1, line("a")));

    std::atomic<bool> got{false};
    std::thread waiter([&] {
        AdmissionQueue::Batch batch;
        if (q.nextBatch(&batch))
            got.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(got.load()) << "hold did not freeze dispatch";
    q.holdDispatch(false);
    waiter.join();
    EXPECT_TRUE(got.load());
}

// ---------------------------------------------------------------------
// TcpServer (in-process, ephemeral port)
// ---------------------------------------------------------------------

/** A started server + the service behind it, torn down in order. */
struct ServerFixture
{
    explicit ServerFixture(TcpServerConfig tcp = {},
                           ServeConfig cfg = testConfig())
        : service(cfg), server(service, tcp, log, sessionOpts())
    {
        std::string error;
        if (!server.start(&error))
            ADD_FAILURE() << "server start failed: " << error;
    }

    static SessionOptions
    sessionOpts()
    {
        SessionOptions opts;
        opts.latencyFields = false;
        return opts;
    }

    ~ServerFixture()
    {
        server.requestStop();
        server.wait();
    }

    std::ostringstream log;
    EvalService service;
    TcpServer server;
};

std::vector<std::string>
runClient(unsigned short port, const std::vector<std::string> &lines,
          std::size_t window = 64)
{
    LoopbackClient client;
    std::vector<std::string> responses;
    std::string error;
    EXPECT_TRUE(client.connect(port, &error)) << error;
    EXPECT_TRUE(client.run(lines, &responses, &error, window))
        << error;
    return responses;
}

TEST(ServeTcp, PipelinedSessionAnswersInOrder)
{
    ServerFixture fx;
    SpaceSpec spec = SpaceSpec::table2();
    std::vector<std::string> lines;
    for (int i = 0; i < 40; ++i)
        lines.push_back(evalLine(i, spec.at(i % spec.size())));

    const auto responses = runClient(fx.server.port(), lines, 8);
    ASSERT_EQ(responses.size(), lines.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
        std::string error;
        auto v = json::parse(responses[i], &error);
        ASSERT_TRUE(v) << error;
        EXPECT_EQ(v->get("id")->asU64(), i);
        EXPECT_EQ(v->get("type")->string, "result");
    }
}

TEST(ServeTcp, ResponsesByteIdenticalAcrossDispatcherCounts)
{
    SpaceSpec spec = SpaceSpec::table2();
    std::vector<std::string> lines;
    for (int i = 0; i < 32; ++i)
        lines.push_back(evalLine(i, spec.at(i % spec.size())));

    std::vector<std::vector<std::string>> runs;
    for (unsigned dispatchers : {1u, 4u}) {
        TcpServerConfig tcp;
        tcp.dispatchers = dispatchers;
        ServerFixture fx(tcp, testConfig(2));
        runs.push_back(runClient(fx.server.port(), lines));
    }
    EXPECT_EQ(runs[0], runs[1]);
}

TEST(ServeTcp, ConcurrentSessionsAllComplete)
{
    TcpServerConfig tcp;
    tcp.dispatchers = 4;
    ServerFixture fx(tcp, testConfig(2));
    SpaceSpec spec = SpaceSpec::table2();

    constexpr int kClients = 8;
    constexpr int kPerClient = 16;
    std::vector<std::thread> clients;
    std::atomic<int> bad{0};
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::vector<std::string> lines;
            for (int i = 0; i < kPerClient; ++i) {
                lines.push_back(evalLine(
                    c * kPerClient + i,
                    spec.at((c * kPerClient + i) % spec.size())));
            }
            LoopbackClient client;
            std::vector<std::string> responses;
            std::string error;
            if (!client.connect(fx.server.port(), &error) ||
                !client.run(lines, &responses, &error) ||
                responses.size() != lines.size()) {
                bad.fetch_add(1);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(bad.load(), 0);
}

TEST(ServeTcp, OverloadShedsStructuredErrorsOnly)
{
    TcpServerConfig tcp;
    tcp.maxQueue = 4;
    tcp.maxInflight = 4;
    tcp.dispatchHoldMs = 400;
    ServerFixture fx(tcp);
    SpaceSpec spec = SpaceSpec::table2();

    std::vector<std::string> lines;
    for (int i = 0; i < 12; ++i)
        lines.push_back(evalLine(i, spec.at(i % spec.size())));

    LoopbackClient client;
    std::vector<std::string> responses;
    std::string error;
    ASSERT_TRUE(client.connect(fx.server.port(), &error)) << error;
    ASSERT_TRUE(client.flood(lines, &responses, &error)) << error;

    // Every request line got exactly one well-formed response: the
    // four admitted before the held queue filled evaluate, the rest
    // come back as structured overloaded errors — nothing dropped,
    // nothing corrupted.
    ASSERT_EQ(responses.size(), lines.size());
    int results = 0, overloaded = 0;
    for (const std::string &r : responses) {
        auto v = json::parse(r, &error);
        ASSERT_TRUE(v) << error << ": " << r;
        const std::string type = v->get("type")->string;
        if (type == "result") {
            ++results;
        } else {
            ASSERT_EQ(type, "error");
            ASSERT_NE(v->get("code"), nullptr);
            EXPECT_EQ(v->get("code")->string, kOverloadedCode);
            ++overloaded;
        }
    }
    EXPECT_EQ(results, 4);
    EXPECT_EQ(overloaded, 8);
}

TEST(ServeTcp, ShutdownRequestDrainsGracefully)
{
    SpaceSpec spec = SpaceSpec::table2();
    std::ostringstream log;
    EvalService service(testConfig());
    TcpServer server(service, {}, log, ServerFixture::sessionOpts());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    std::vector<std::string> lines = {
        evalLine(1, spec.at(0)),
        evalLine(2, spec.at(1)),
        "{\"id\": 3, \"type\": \"shutdown\"}",
    };
    const auto responses = runClient(server.port(), lines);
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_NE(responses[2].find("\"type\": \"bye\""),
              std::string::npos);

    server.wait(); // the shutdown request alone must end the server
    EXPECT_TRUE(server.drainedByShutdown());
}

// ---------------------------------------------------------------------
// Warm cache across a service restart
// ---------------------------------------------------------------------

TEST(ServeTcp, WarmCacheRestartServesFromSpill)
{
    const std::string dir = ::testing::TempDir() + "serve_warm_cache";
    SpaceSpec spec = SpaceSpec::table2();
    std::vector<std::string> lines;
    for (int i = 0; i < 12; ++i)
        lines.push_back(evalLine(i, spec.at(i)));

    std::vector<std::string> cold, warm;
    {
        ServeConfig cfg = testConfig();
        cfg.cacheDir = dir;
        ServerFixture fx({}, cfg);
        cold = runClient(fx.server.port(), lines);
        EXPECT_EQ(fx.service.persistCaches(nullptr), 1u);
    }
    {
        ServeConfig cfg = testConfig();
        cfg.cacheDir = dir;
        ServerFixture fx({}, cfg);
        warm = runClient(fx.server.port(), lines);

        const ServiceStats stats = fx.service.stats();
        EXPECT_EQ(stats.restored, 12u);
        EXPECT_EQ(stats.hits, 12u) << "restart did not hit the spill";
        EXPECT_EQ(stats.misses, 0u);
    }

    // Responses differ only in the cached flag — the values and
    // formatting must be byte-identical to the cold run.
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        std::string c = cold[i], w = warm[i];
        const auto strip = [](std::string &s) {
            const std::size_t at = s.find("\"cached\": ");
            if (at != std::string::npos)
                s.erase(at, s.find(',', at) + 2 - at);
        };
        strip(c);
        strip(w);
        EXPECT_EQ(c, w);
    }
}

// ---------------------------------------------------------------------
// Metrics endpoint (HTTP/1.0 Prometheus exposition)
// ---------------------------------------------------------------------

/** One blocking HTTP/1.0 GET against 127.0.0.1:@p port. */
std::string
httpGet(unsigned short port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return "";
    }
    const std::string request =
        "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t put =
            ::send(fd, request.data() + off, request.size() - off, 0);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return "";
        }
        off += static_cast<std::size_t>(put);
    }
    std::string response;
    for (;;) {
        char chunk[1 << 14];
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            break;
        response.append(chunk, static_cast<std::size_t>(got));
    }
    ::close(fd);
    return response;
}

TEST(ServeTcp, MetricsEndpointServesValidExposition)
{
    TcpServerConfig tcp;
    tcp.metricsPort = 0; // ephemeral
    ServerFixture fx(tcp);
    ASSERT_GT(fx.server.metricsPort(), 0);

    // A scrape works before any traffic has arrived...
    const std::string cold =
        httpGet(static_cast<unsigned short>(fx.server.metricsPort()),
                "/metrics");
    EXPECT_NE(cold.find("HTTP/1.0 200 OK"), std::string::npos);

    // ...and after traffic the serve series carry samples.
    SpaceSpec spec = SpaceSpec::table2();
    std::vector<std::string> lines;
    for (int i = 0; i < 8; ++i)
        lines.push_back(evalLine(i, spec.at(i % spec.size())));
    runClient(fx.server.port(), lines);

    const std::string response =
        httpGet(static_cast<unsigned short>(fx.server.metricsPort()),
                "/metrics");
    ASSERT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("Content-Type: text/plain"),
              std::string::npos);
    const std::size_t split = response.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    const std::string body = response.substr(split + 4);

    std::string error;
    EXPECT_TRUE(obs::validateExposition(body, &error)) << error;
    for (const char *series :
         {"mech_serve_latency_result_bucket", "mech_serve_connections",
          "mech_serve_bytes_in", "mech_serve_shed",
          "mech_admission_queue_depth", "mech_admission_admitted",
          "mech_evalcache_hits", "mech_evalcache_misses"}) {
        EXPECT_NE(body.find(series), std::string::npos)
            << "missing series " << series;
    }
}

TEST(ServeTcp, MetricsEndpointRejectsUnknownPath)
{
    TcpServerConfig tcp;
    tcp.metricsPort = 0;
    ServerFixture fx(tcp);
    ASSERT_GT(fx.server.metricsPort(), 0);

    const std::string response =
        httpGet(static_cast<unsigned short>(fx.server.metricsPort()),
                "/nope");
    EXPECT_NE(response.find("HTTP/1.0 404 Not Found"),
              std::string::npos);

    // NDJSON sessions are unaffected by metrics traffic.
    SpaceSpec spec = SpaceSpec::table2();
    const auto responses =
        runClient(fx.server.port(), {evalLine(1, spec.at(0))});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_NE(responses[0].find("\"type\": \"result\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Scatter-gather equivalence
// ---------------------------------------------------------------------

TEST(ServeShard, ShardOfPartitionsStably)
{
    SpaceSpec spec = SpaceSpec::table2();
    std::set<std::size_t> used;
    for (std::uint64_t i = 0; i < spec.size(); ++i) {
        const std::size_t shard = shardOf(spec.at(i), 3);
        EXPECT_LT(shard, 3u);
        EXPECT_EQ(shard, shardOf(spec.at(i), 3)) << "unstable hash";
        used.insert(shard);
    }
    EXPECT_EQ(used.size(), 3u)
        << "192 points land on fewer than 3 of 3 shards";
    EXPECT_EQ(shardOf(spec.at(0), 1), 0u);
}

TEST(ServeShard, GatheredFrontierMatchesBatchBytes)
{
    // The single-server reference: one batch request over the space.
    const std::string space = "l2kb=128,256;width=1:4";
    EvalService single(testConfig());
    std::vector<std::string> batchBodies = single.handleFlush(
        [&] {
            ParseOutcome outcome = parseRequest(
                "{\"type\": \"batch\", \"space\": \"" + space +
                "\", \"objectives\": \"energy,delay\"}");
            EXPECT_TRUE(outcome.ok()) << outcome.error;
            return std::vector<ServeRequest>{*outcome.request};
        }());
    ASSERT_EQ(batchBodies.size(), 1u);
    const std::string reference = batchBodies[0];

    // The sharded path: every point evaluated as a single request
    // against one of two independent servers, gathered by hash.
    TcpServerConfig tcp;
    ServeConfig cfg = testConfig();
    ServerFixture shard0(tcp, cfg);
    ServerFixture shard1(tcp, cfg);
    const unsigned short ports[2] = {shard0.server.port(),
                                     shard1.server.port()};

    auto spec = SpaceSpec::tryParse(space, nullptr);
    ASSERT_TRUE(spec);
    const std::vector<Objective> objectives =
        parseObjectives("energy,delay");

    std::vector<FrontierEntry> entries(spec->size());
    GatherCounts counts;
    counts.requested = spec->size();
    std::vector<std::vector<std::string>> perShard(2);
    std::vector<std::vector<std::uint64_t>> perShardIdx(2);
    for (std::uint64_t i = 0; i < spec->size(); ++i) {
        const DesignPoint point = spec->at(i);
        const std::size_t s = shardOf(point, 2);
        perShard[s].push_back(
            "{\"id\": " + std::to_string(i) +
            ", \"type\": \"eval\", \"point\": \"" + point.toKey() +
            "\", \"objectives\": \"energy,delay\"}");
        perShardIdx[s].push_back(i);
    }
    for (std::size_t s = 0; s < 2; ++s) {
        ASSERT_FALSE(perShard[s].empty())
            << "shard " << s << " owns no points";
        const auto responses = runClient(ports[s], perShard[s]);
        ASSERT_EQ(responses.size(), perShard[s].size());
        for (std::size_t r = 0; r < responses.size(); ++r) {
            std::string error;
            auto v = json::parse(responses[r], &error);
            ASSERT_TRUE(v) << error;
            ASSERT_EQ(v->get("type")->string, "result");
            const std::uint64_t idx = *v->get("id")->asU64();
            const DesignPoint point = spec->at(idx);
            FrontierEntry &entry = entries[idx];
            entry.pointKey = point.toKey();
            entry.label = point.label();
            const json::Value *objs =
                v->get("results")->get("model")->get("objectives");
            for (const Objective &obj : objectives)
                entry.objectives.push_back(
                    objs->get(obj.name)->number);
            if (v->get("cached")->boolean)
                ++counts.hits;
            else
                ++counts.misses;
        }
    }

    const std::string gathered = frontierResponse(
        "", spec->describe(), spec->size(), "model", objectives,
        {"jpeg_c"}, entries, counts);
    EXPECT_EQ(gathered, reference)
        << "scatter-gather drifted from the single-server batch";
}

} // namespace
} // namespace mech::serve
