/**
 * @file
 * Tests for the serve layer: protocol parsing (including every
 * malformed-input class), the pipelined session loop, cache/hit
 * accounting, thread-count byte-identity, batch frontiers against
 * the search engine, and graceful drain.
 *
 * Sessions run fully in-process over stringstreams: the same
 * ServerSession the stdio and TCP front ends drive, minus the fds.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/json.hh"
#include "serve/protocol.hh"
#include "serve/request_queue.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/session.hh"

#include "search/objective.hh"
#include "search/space_spec.hh"
#include "search/strategy.hh"
#include "workload/suites.hh"

namespace mech::serve {
namespace {

constexpr InstCount kTraceLen = 10000;

ServeConfig
testConfig(unsigned threads = 1)
{
    ServeConfig cfg;
    cfg.traceLen = kTraceLen;
    cfg.threads = threads;
    cfg.defaultBench = {"jpeg_c"};
    return cfg;
}

/** Run @p requests through a fresh service; return response lines. */
std::vector<std::string>
serveLines(const std::string &requests, EvalService &service,
           SessionOptions opts = {})
{
    opts.latencyFields = false;
    std::istringstream in(requests);
    std::ostringstream out;
    IstreamLineSource source(in);
    ServerSession session(service, source, out, opts);
    session.run();

    std::vector<std::string> lines;
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line))
        lines.push_back(line);
    return lines;
}

json::Value
parsedResponse(const std::string &line)
{
    std::string error;
    auto v = json::parse(line, &error);
    EXPECT_TRUE(v.has_value()) << line << ": " << error;
    return v ? *v : json::Value{};
}

std::string
typeOf(const json::Value &v)
{
    const json::Value *t = v.get("type");
    return t && t->isString() ? t->string : "";
}

// ---- protocol parsing -----------------------------------------------------

TEST(ServeProtocol, ParsesEvalWithKeyAndAxes)
{
    ParseOutcome a = parseRequest(
        R"({"id": 1, "type": "eval", "point": )"
        R"("l2kb=256,assoc=16,depth=7,freq=0.8,)"
        R"(width=2,pred=hybrid3k5"})");
    ASSERT_TRUE(a.ok()) << a.error;
    EXPECT_EQ(a.request->idJson, "1");
    EXPECT_EQ(a.request->point->l2KB, 256u);
    EXPECT_EQ(a.request->point->predictor, PredictorKind::Hybrid3K5);

    ParseOutcome b = parseRequest(
        R"({"id": "x", "type": "eval", "point": {"width": 3}})");
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(b.request->idJson, "\"x\"");
    DesignPoint expect = defaultDesignPoint();
    expect.width = 3;
    EXPECT_EQ(*b.request->point, expect);
}

TEST(ServeProtocol, ParsesOooPointAxes)
{
    ParseOutcome a = parseRequest(
        R"({"type": "eval", "point": {"rob": 64, "iq": 16,)"
        R"( "fumul": 2, "buses": 8}})");
    ASSERT_TRUE(a.ok()) << a.error;
    DesignPoint expect = defaultDesignPoint();
    expect.ooo.robSize = 64;
    expect.ooo.iqSize = 16;
    expect.ooo.fuMul = 2;
    expect.ooo.resultBuses = 8;
    EXPECT_EQ(*a.request->point, expect);

    // Zero-sized structures are malformed at the protocol layer.
    EXPECT_FALSE(parseRequest(
                     R"({"type": "eval", "point": {"rob": 0}})")
                     .ok());
    EXPECT_FALSE(parseRequest(
                     R"({"type": "eval", "point": {"buses": 0}})")
                     .ok());
}

TEST(ServeProtocol, NameListsAcceptCsvAndArrays)
{
    ParseOutcome a = parseRequest(
        R"({"type": "eval", "point": {"width": 1},)"
        R"( "bench": "jpeg_c, sha", "backends": ["model", "sim"]})");
    ASSERT_TRUE(a.ok()) << a.error;
    EXPECT_EQ(a.request->bench,
              (std::vector<std::string>{"jpeg_c", "sha"}));
    EXPECT_EQ(a.request->backends,
              (std::vector<std::string>{"model", "sim"}));
}

TEST(ServeProtocol, MalformedLinesReportNotCrash)
{
    // Truncated JSON, wrong shapes, bad axes: all must come back as
    // messages, never terminate the process.
    for (const char *line : {
             "{\"type\": \"eval\", \"point\":",
             "[1, 2, 3]",
             "{\"type\": 7}",
             "{\"type\": \"fly\"}",
             "{\"type\": \"eval\"}",
             "{\"type\": \"eval\", \"point\": 9}",
             "{\"type\": \"eval\", \"point\": \"l2kb=512\"}",
             "{\"type\": \"eval\", \"point\": {}}",
             "{\"type\": \"eval\", \"point\": {\"l2kbb\": 512}}",
             "{\"type\": \"eval\", \"point\": {\"width\": 0}}",
             "{\"type\": \"eval\", \"point\": {\"freq\": -1}}",
             "{\"type\": \"eval\", \"point\": {\"pred\": \"p6\"}}",
             "{\"type\": \"batch\"}",
             "{\"type\": \"batch\", \"space\": \"\"}",
             "{\"type\": \"eval\", \"point\": {\"width\": 1},"
             " \"bench\": 3}",
             "{\"id\": [], \"type\": \"stats\"}",
         }) {
        ParseOutcome outcome = parseRequest(line);
        EXPECT_FALSE(outcome.ok()) << line;
        EXPECT_FALSE(outcome.error.empty()) << line;
    }
}

TEST(ServeProtocol, IdEchoSurvivesParseFailures)
{
    ParseOutcome outcome =
        parseRequest(R"({"id": 42, "type": "eval", "point": 1})");
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.idJson, "42");
    EXPECT_EQ(errorResponse(outcome.idJson, "boom"),
              "{\"schema_version\": 1, \"id\": 42, "
              "\"type\": \"error\", \"error\": \"boom\"}");
}

// ---- request queue --------------------------------------------------------

TEST(ServeQueue, OrdersAndCaps)
{
    RequestQueue queue(2);
    EXPECT_TRUE(queue.empty());
    PendingLine a;
    a.error = "first";
    PendingLine b;
    b.error = "second";
    queue.push(a);
    EXPECT_FALSE(queue.full());
    queue.push(b);
    EXPECT_TRUE(queue.full());
    auto drained = queue.take();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].error, "first");
    EXPECT_EQ(drained[1].error, "second");
    EXPECT_TRUE(queue.empty());
}

// ---- sessions end to end --------------------------------------------------

TEST(ServeSession, AnswersInRequestOrderWithCacheFlags)
{
    EvalService service(testConfig());
    const std::string point = defaultDesignPoint().toKey();
    std::string requests;
    requests += "{\"id\": 1, \"type\": \"eval\", \"point\": \"" +
                point + "\"}\n";
    requests += "not json at all\n";
    requests += "{\"id\": 3, \"type\": \"eval\", \"point\": \"" +
                point + "\"}\n";
    requests += "{\"id\": 4, \"type\": \"stats\"}\n";

    std::vector<std::string> lines = serveLines(requests, service);
    ASSERT_EQ(lines.size(), 4u);

    json::Value r1 = parsedResponse(lines[0]);
    EXPECT_EQ(typeOf(r1), "result");
    EXPECT_EQ(r1.get("id")->number, 1.0);
    EXPECT_FALSE(r1.get("cached")->boolean);
    ASSERT_NE(r1.get("results")->get("model"), nullptr);
    double cpi = r1.get("results")
                     ->get("model")
                     ->get("objectives")
                     ->get("cpi")
                     ->number;
    EXPECT_GT(cpi, 0.1);
    EXPECT_LT(cpi, 10.0);

    EXPECT_EQ(typeOf(parsedResponse(lines[1])), "error");

    json::Value r3 = parsedResponse(lines[2]);
    EXPECT_EQ(typeOf(r3), "result");
    EXPECT_TRUE(r3.get("cached")->boolean);

    json::Value r4 = parsedResponse(lines[3]);
    EXPECT_EQ(typeOf(r4), "stats");
    EXPECT_EQ(r4.get("cache")->get("requested")->number, 2.0);
    EXPECT_EQ(r4.get("cache")->get("hits")->number, 1.0);
    EXPECT_EQ(r4.get("cache")->get("misses")->number, 1.0);
}

TEST(ServeSession, StatsCarryUptimeAndGroupCacheOccupancy)
{
    EvalService service(testConfig());
    const std::string point = defaultDesignPoint().toKey();
    std::string requests;
    requests += "{\"id\": 1, \"type\": \"eval\", \"point\": \"" +
                point + "\"}\n";
    requests += "{\"id\": 2, \"type\": \"eval\", \"point\": \"" +
                point + "\"}\n";
    requests += "{\"id\": 3, \"type\": \"stats\"}\n";

    std::vector<std::string> lines = serveLines(requests, service);
    ASSERT_EQ(lines.size(), 3u);
    json::Value stats = parsedResponse(lines[2]);

    // Deterministic mode pins wall clock to 0 and omits the latency
    // quantiles entirely — the response bytes carry no timing.
    ASSERT_NE(stats.get("uptime_ms"), nullptr);
    EXPECT_EQ(stats.get("uptime_ms")->number, 0.0);
    EXPECT_EQ(stats.get("latency_quantiles_us"), nullptr);

    const json::Value *groups = stats.get("group_caches");
    ASSERT_NE(groups, nullptr);
    ASSERT_TRUE(groups->isArray());
    ASSERT_EQ(groups->array.size(), 1u);
    const json::Value &g = groups->array[0];
    EXPECT_FALSE(g.get("key")->string.empty());
    EXPECT_EQ(g.get("points")->number, 1.0);
    EXPECT_EQ(g.get("hits")->number, 1.0);
    EXPECT_EQ(g.get("misses")->number, 1.0);
    EXPECT_EQ(g.get("hit_rate")->number, 0.5);
}

TEST(ServeSession, TimingStatsReportLatencyQuantiles)
{
    EvalService service(testConfig());
    const std::string point = defaultDesignPoint().toKey();
    std::string requests;
    requests += "{\"id\": 1, \"type\": \"eval\", \"point\": \"" +
                point + "\"}\n";
    requests += "{\"id\": 2, \"type\": \"stats\"}\n";

    std::istringstream in(requests);
    std::ostringstream out;
    IstreamLineSource source(in);
    SessionOptions opts;
    opts.latencyFields = true;
    ServerSession session(service, source, out, opts);
    session.run();

    std::vector<std::string> lines;
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);

    json::Value stats = parsedResponse(lines[1]);
    const json::Value *q = stats.get("latency_quantiles_us");
    ASSERT_NE(q, nullptr);
    for (const char *kind :
         {"result", "frontier", "control", "error", "queue_wait"}) {
        ASSERT_NE(q->get(kind), nullptr) << kind;
        ASSERT_NE(q->get(kind)->get("count"), nullptr) << kind;
        EXPECT_LE(q->get(kind)->get("p50")->number,
                  q->get(kind)->get("p99")->number)
            << kind;
    }
    // This session answered at least one eval in timing mode, so the
    // result histogram cannot be empty.  (The instruments are
    // process-wide, so other tests may have added more.)
    EXPECT_GE(q->get("result")->get("count")->number, 1.0);
}

TEST(ServeSession, MalformedServiceInputsYieldStructuredErrors)
{
    EvalService service(testConfig());
    const std::string good = defaultDesignPoint().toKey();
    std::string requests;
    // Unknown names of every kind, plus semantically invalid points
    // (out of the representable space) with valid syntax.
    requests += "{\"id\": 1, \"type\": \"eval\", \"point\": \"" +
                good + "\", \"bench\": [\"nope\"]}\n";
    requests += "{\"id\": 2, \"type\": \"eval\", \"point\": \"" +
                good + "\", \"backends\": \"warp\"}\n";
    requests += "{\"id\": 3, \"type\": \"eval\", \"point\": \"" +
                good + "\", \"objectives\": [\"speed\"]}\n";
    requests += "{\"id\": 4, \"type\": \"eval\", \"point\": "
                "{\"l2kb\": 96}}\n";
    requests += "{\"id\": 5, \"type\": \"eval\", \"point\": "
                "{\"width\": 12}, \"objectives\": "
                "[\"cpi\", \"cpi\"]}\n";
    requests += "{\"id\": 6, \"type\": \"eval\", \"point\": "
                "{\"pred\": \"bimodal\"}}\n";
    requests += "{\"id\": 7, \"type\": \"batch\", \"space\": "
                "\"l2kb=67\"}\n";
    requests += "{\"id\": 8, \"type\": \"batch\", \"space\": "
                "\"wide\", \"backends\": \"model,sim\"}\n";
    requests += "{\"id\": 9, \"type\": \"eval\", \"point\": \"" +
                good + "\"}\n";

    std::vector<std::string> lines = serveLines(requests, service);
    ASSERT_EQ(lines.size(), 9u);
    for (std::size_t i = 0; i < 8; ++i) {
        json::Value v = parsedResponse(lines[i]);
        EXPECT_EQ(typeOf(v), "error") << lines[i];
        EXPECT_FALSE(v.get("error")->string.empty());
        EXPECT_EQ(v.get("id")->number, static_cast<double>(i + 1));
    }
    // The session survived it all and still answers real requests.
    EXPECT_EQ(typeOf(parsedResponse(lines[8])), "result");
}

TEST(ServeSession, OooAxesNeedAnOooBackend)
{
    EvalService service(testConfig());
    std::string requests;
    // Sweeping rob under the default (in-order model) backend: the
    // axis would be silently ignored, so the service refuses.
    requests += "{\"id\": 1, \"type\": \"batch\", \"space\": "
                "\"rob=64,128\"}\n";
    // Same space under an out-of-order backend is served.
    requests += "{\"id\": 2, \"type\": \"batch\", \"space\": "
                "\"rob=64,128\", \"backends\": \"ooo\"}\n";
    // Point evals aren't sweeps: explicit axes work per backend, and
    // out-of-range structures are semantic errors, not crashes.
    requests += "{\"id\": 3, \"type\": \"eval\", \"point\": "
                "{\"rob\": 64}, \"backends\": \"ooo,oosim\"}\n";
    requests += "{\"id\": 4, \"type\": \"eval\", \"point\": "
                "{\"rob\": 8192}}\n";

    std::vector<std::string> lines = serveLines(requests, service);
    ASSERT_EQ(lines.size(), 4u);

    json::Value r1 = parsedResponse(lines[0]);
    EXPECT_EQ(typeOf(r1), "error");
    EXPECT_NE(r1.get("error")->string.find("out-of-order"),
              std::string::npos);

    EXPECT_EQ(typeOf(parsedResponse(lines[1])), "frontier");

    json::Value r3 = parsedResponse(lines[2]);
    EXPECT_EQ(typeOf(r3), "result");
    ASSERT_NE(r3.get("results")->get("oosim"), nullptr);
    EXPECT_GT(r3.get("results")
                  ->get("oosim")
                  ->get("objectives")
                  ->get("cpi")
                  ->number,
              0.0);

    EXPECT_EQ(typeOf(parsedResponse(lines[3])), "error");
}

TEST(ServeSession, PathologicalGeometryIsRejectedNotAllocated)
{
    // A hostile client naming a gigantic L2 must get an error, not
    // drive a tag-array allocation (SpaceSpec::kMaxL2KB bounds it).
    EvalService service(testConfig());
    std::vector<std::string> lines = serveLines(
        "{\"id\": 1, \"type\": \"eval\", \"point\": "
        "{\"l2kb\": 1073741824}}\n"
        "{\"id\": 2, \"type\": \"batch\", \"space\": "
        "\"l2kb=1048576\"}\n",
        service);
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string &line : lines) {
        json::Value v = parsedResponse(line);
        EXPECT_EQ(typeOf(v), "error") << line;
        EXPECT_NE(v.get("error")->string.find("64 MiB"),
                  std::string::npos)
            << line;
    }
}

TEST(ServeSession, WideBatchIsCappedByMaxSpace)
{
    ServeConfig cfg = testConfig();
    cfg.maxSpacePoints = 100;
    EvalService service(cfg);
    std::vector<std::string> lines = serveLines(
        "{\"id\": 1, \"type\": \"batch\", \"space\": \"table2\"}\n",
        service);
    ASSERT_EQ(lines.size(), 1u);
    json::Value v = parsedResponse(lines[0]);
    EXPECT_EQ(typeOf(v), "error");
    EXPECT_NE(v.get("error")->string.find("192"), std::string::npos);
}

TEST(ServeSession, OversizedLineIsAnErrorNotACrash)
{
    EvalService service(testConfig());
    std::string huge = "{\"pad\": \"";
    huge.append(kMaxRequestBytes + 16, 'x');
    huge += "\"}";
    std::vector<std::string> lines =
        serveLines(huge + "\n{\"id\": 2, \"type\": \"stats\"}\n",
                   service);
    ASSERT_EQ(lines.size(), 2u);
    json::Value v = parsedResponse(lines[0]);
    EXPECT_EQ(typeOf(v), "error");
    EXPECT_NE(v.get("error")->string.find("exceeds"),
              std::string::npos);
    EXPECT_EQ(typeOf(parsedResponse(lines[1])), "stats");
}

TEST(ServeSession, ShutdownDrainsAndStops)
{
    EvalService service(testConfig());
    const std::string point = defaultDesignPoint().toKey();
    std::string requests;
    requests += "{\"id\": 1, \"type\": \"eval\", \"point\": \"" +
                point + "\"}\n";
    requests += "{\"id\": 2, \"type\": \"shutdown\"}\n";
    requests += "{\"id\": 3, \"type\": \"eval\", \"point\": \"" +
                point + "\"}\n"; // after shutdown: never answered

    std::istringstream in(requests);
    std::ostringstream out;
    IstreamLineSource source(in);
    SessionOptions opts;
    opts.latencyFields = false;
    ServerSession session(service, source, out, opts);
    SessionStats stats = session.run();
    EXPECT_TRUE(stats.shutdownRequested);

    std::vector<std::string> lines;
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(typeOf(parsedResponse(lines[0])), "result");
    json::Value bye = parsedResponse(lines[1]);
    EXPECT_EQ(typeOf(bye), "bye");
    EXPECT_EQ(bye.get("requests")->get("eval")->number, 1.0);
}

TEST(ServeSession, LatencyFieldsAppendWhenEnabled)
{
    EvalService service(testConfig());
    std::istringstream in("{\"id\": 1, \"type\": \"info\"}\n");
    std::ostringstream out;
    IstreamLineSource source(in);
    SessionOptions opts;
    opts.latencyFields = true;
    ServerSession session(service, source, out, opts);
    session.run();
    json::Value v = parsedResponse(out.str());
    ASSERT_NE(v.get("latency_us"), nullptr);
    EXPECT_GE(v.get("latency_us")->number, 0.0);
}

// ---- determinism ----------------------------------------------------------

/** A mixed 600-line request stream over the Table 2 space. */
std::string
replayStream()
{
    std::string requests;
    SpaceSpec spec = SpaceSpec::table2();
    for (int i = 0; i < 600; ++i) {
        DesignPoint p = spec.at((i * 37) % spec.size());
        requests += "{\"id\": " + std::to_string(i) +
                    ", \"type\": \"eval\", \"point\": \"" +
                    p.toKey() + "\"}\n";
        if (i == 300) {
            requests += "{\"id\": 9300, \"type\": \"batch\", "
                        "\"space\": \"l2kb=128,256;width=1,4\"}\n";
        }
    }
    requests += "{\"id\": 10000, \"type\": \"stats\"}\n";
    return requests;
}

TEST(ServeDeterminism, ThreadCountNeverChangesResponseBytes)
{
    EvalService serial(testConfig(1));
    EvalService threaded(testConfig(4));
    const std::string requests = replayStream();
    std::vector<std::string> a = serveLines(requests, serial);
    std::vector<std::string> b = serveLines(requests, threaded);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "line " << i;
}

TEST(ServeDeterminism, ChunkedDeliveryMatchesOneShot)
{
    // The same stream fed line by line (forcing a flush per line,
    // maxBatch 1) must produce byte-identical output to the fully
    // pipelined run: accounting may not depend on flush boundaries.
    EvalService one(testConfig(2));
    EvalService chunked(testConfig(2));
    const std::string requests = replayStream();
    SessionOptions tiny;
    tiny.maxBatch = 1;
    std::vector<std::string> a = serveLines(requests, one);
    std::vector<std::string> b =
        serveLines(requests, chunked, tiny);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "line " << i;
}

TEST(ServeDeterminism, ReplayHitRateExceedsNinetyPercent)
{
    // The acceptance-criteria scenario in miniature: a long replay
    // over a bounded space must be served overwhelmingly from the
    // memo.
    EvalService service(testConfig(2));
    SpaceSpec spec = SpaceSpec::table2();
    std::string requests;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        DesignPoint p = spec.at((i * 13) % spec.size());
        requests += "{\"type\": \"eval\", \"point\": \"" +
                    p.toKey() + "\"}\n";
    }
    std::vector<std::string> lines = serveLines(requests, service);
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(n));

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requested, static_cast<std::uint64_t>(n));
    EXPECT_EQ(stats.misses, spec.size());
    EXPECT_GT(stats.hitRate(), 0.90);
    EXPECT_EQ(stats.cachedPoints, spec.size());
}

// ---- batch vs the search engine -------------------------------------------

TEST(ServeBatch, FrontierMatchesExhaustiveSearch)
{
    const std::string space_text =
        "l2kb=128,256;assoc=8;depth=5@0.6,9@1.0;width=1:4;"
        "pred=gshare1k";

    EvalService service(testConfig(2));
    std::vector<std::string> lines = serveLines(
        "{\"id\": 1, \"type\": \"batch\", \"space\": \"" +
            space_text +
            "\", \"objectives\": \"energy,delay\", "
            "\"bench\": \"jpeg_c\"}\n",
        service);
    ASSERT_EQ(lines.size(), 1u);
    json::Value v = parsedResponse(lines[0]);
    ASSERT_EQ(typeOf(v), "frontier") << lines[0];

    // Reference: the PR-4 search engine, exhaustive over the same
    // space with the same objectives and backend.
    SearchEvaluator evaluator({profileByName("jpeg_c")}, kTraceLen,
                              parseObjectives("energy,delay"));
    SearchOptions opts;
    opts.budget = 0;
    SearchResult reference = runSearch(SpaceSpec::parse(space_text),
                                       "exhaustive", evaluator, opts);

    const json::Value *frontier = v.get("frontier");
    ASSERT_TRUE(frontier && frontier->isArray());
    ASSERT_EQ(frontier->array.size(), reference.frontier.size());

    // Both sides enumerate in space order, so frontiers align
    // entry for entry.
    for (std::size_t i = 0; i < reference.frontier.size(); ++i) {
        const SearchEval &ref =
            *reference.evaluated[reference.frontier[i]];
        const json::Value &entry = frontier->array[i];
        EXPECT_EQ(entry.get("point")->string, ref.point.toKey());
        EXPECT_EQ(entry.get("objectives")->get("energy")->number,
                  ref.aggregate[0]);
        EXPECT_EQ(entry.get("objectives")->get("delay")->number,
                  ref.aggregate[1]);
    }

    // And the scalar best agrees on the first objective.
    EXPECT_EQ(v.get("best")->get("point")->string,
              reference.best().point.toKey());
}

// ---- stdio front end ------------------------------------------------------

TEST(ServeServer, StdioServerRunsASession)
{
    EvalService service(testConfig());
    std::istringstream in("{\"id\": 1, \"type\": \"info\"}\n");
    std::ostringstream out, log;
    SessionOptions opts;
    opts.latencyFields = false;
    SessionStats stats =
        runStdioServer(service, in, out, log, opts);
    EXPECT_EQ(stats.responses, 1u);
    EXPECT_EQ(typeOf(parsedResponse(out.str())), "info");
    EXPECT_NE(log.str().find("session over"), std::string::npos);
}

} // namespace
} // namespace mech::serve
