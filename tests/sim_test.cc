/**
 * @file
 * Micro-trace tests for the cycle-accurate in-order pipeline: each
 * test isolates one mechanism (ideal streaming, stall-on-use,
 * long-latency blocking, memory-stage blocking, branch penalties) and
 * checks exact cycle counts against hand-derived expectations.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace mech {
namespace {

using test::TraceBuilder;
using test::idealCycles;
using test::idealSim;

// ---- ideal streaming ---------------------------------------------------------

class IdealStreaming
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(IdealStreaming, HazardFreeTraceRunsAtFullWidth)
{
    auto [w, n] = GetParam();
    Trace tr = TraceBuilder().filler(n).build();
    SimResult res = simulateInOrder(tr, idealSim(w, 2));
    EXPECT_EQ(res.cycles, idealCycles(n, w, 2));
    EXPECT_EQ(res.retired, static_cast<InstCount>(n));
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndLengths, IdealStreaming,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1, 4, 7, 64, 400)));

TEST(Sim, DeeperFrontEndOnlyAddsFill)
{
    Trace tr = TraceBuilder().filler(100).build();
    Cycles d2 = simulateInOrder(tr, idealSim(4, 2)).cycles;
    Cycles d6 = simulateInOrder(tr, idealSim(4, 6)).cycles;
    EXPECT_EQ(d6, d2 + 4);
}

TEST(Sim, EmptyTraceIsZeroCycles)
{
    Trace tr;
    SimResult res = simulateInOrder(tr, idealSim());
    EXPECT_EQ(res.cycles, 0u);
    EXPECT_EQ(res.retired, 0u);
}

// ---- stall-on-use on unit producers -------------------------------------------

TEST(Sim, SerialChainRunsAtOneIpc)
{
    // Every instruction consumes the previous one: W cannot help.
    TraceBuilder b;
    b.alu(8);
    for (int i = 1; i < 100; ++i)
        b.alu(static_cast<RegIndex>(8 + i % 20),
              static_cast<RegIndex>(8 + (i - 1) % 20));
    Trace tr = b.build();
    SimResult res = simulateInOrder(tr, idealSim(4, 2));
    // One instruction per cycle + pipeline fill.
    EXPECT_EQ(res.cycles, 100u + 2u + 2u);
}

TEST(Sim, ForwardingAllowsBackToBackAcrossCycles)
{
    // Dependent pairs in *different* issue groups do not stall: at
    // W=1 a serial chain is indistinguishable from independent work.
    TraceBuilder b;
    b.alu(8);
    for (int i = 1; i < 50; ++i)
        b.alu(static_cast<RegIndex>(8 + i % 20),
              static_cast<RegIndex>(8 + (i - 1) % 20));
    Trace tr = b.build();
    Trace indep = TraceBuilder().filler(50).build();
    EXPECT_EQ(simulateInOrder(tr, idealSim(1, 2)).cycles,
              simulateInOrder(indep, idealSim(1, 2)).cycles);
}

TEST(Sim, IndependentPairsIssueTogether)
{
    // Pairs of independent instructions at W=2: full throughput.
    TraceBuilder b;
    for (int i = 0; i < 50; ++i) {
        b.alu(static_cast<RegIndex>(8 + (2 * i) % 20));
        b.alu(static_cast<RegIndex>(8 + (2 * i + 1) % 20));
    }
    Trace tr = b.build();
    SimResult res = simulateInOrder(tr, idealSim(2, 2));
    EXPECT_EQ(res.cycles, idealCycles(100, 2, 2));
}

// ---- long-latency blocking -------------------------------------------------------

TEST(Sim, MultiplyBlocksThePipeline)
{
    // N independent multiplies, latency L: the execute stage admits
    // one at a time and each holds it L cycles.
    SimConfig cfg = idealSim(4, 2);
    cfg.machine.latIntMult = 4;
    TraceBuilder b;
    for (int i = 0; i < 10; ++i)
        b.op(OpClass::IntMult, static_cast<RegIndex>(8 + i));
    Trace tr = b.build();
    SimResult res = simulateInOrder(tr, cfg);
    // Each multiply occupies execute for 4 cycles, serialized: the
    // k-th issues 4 cycles after the (k-1)-th, plus pipeline fill.
    EXPECT_EQ(res.cycles, 10u * 4u + 4u);
}

TEST(Sim, MultiplyLatencyScalesCost)
{
    SimConfig fast = idealSim(4, 2);
    fast.machine.latIntMult = 2;
    SimConfig slow = idealSim(4, 2);
    slow.machine.latIntMult = 8;
    TraceBuilder b;
    for (int i = 0; i < 20; ++i) {
        b.op(OpClass::IntMult, static_cast<RegIndex>(8 + i % 20));
        b.filler(3);
    }
    Trace tr = b.build();
    Cycles cf = simulateInOrder(tr, fast).cycles;
    Cycles cs = simulateInOrder(tr, slow).cycles;
    // Six extra cycles per multiply, fully exposed in-order.
    EXPECT_EQ(cs - cf, 20u * 6u);
}

TEST(Sim, DivideCostsMoreThanMultiply)
{
    SimConfig cfg = idealSim(4, 2);
    cfg.machine.latIntMult = 4;
    cfg.machine.latIntDiv = 20;
    TraceBuilder bm, bd;
    for (int i = 0; i < 10; ++i) {
        bm.op(OpClass::IntMult, static_cast<RegIndex>(8 + i)).filler(4);
        bd.op(OpClass::IntDiv, static_cast<RegIndex>(8 + i)).filler(4);
    }
    Trace tm = bm.build(), td = bd.build();
    EXPECT_GT(simulateInOrder(td, cfg).cycles,
              simulateInOrder(tm, cfg).cycles + 100);
}

// ---- load-use behaviour -------------------------------------------------------------

TEST(Sim, LoadUseBubbleIsOneCycle)
{
    // W=1: load -> dependent consumer costs exactly one extra cycle
    // versus load -> independent instruction.
    Trace dep = TraceBuilder()
                    .load(8, 0x10000000)
                    .alu(9, 8)
                    .filler(20)
                    .build();
    Trace indep = TraceBuilder()
                      .load(8, 0x10000000)
                      .alu(9)
                      .filler(20)
                      .build();
    SimConfig cfg = idealSim(1, 2);
    EXPECT_EQ(simulateInOrder(dep, cfg).cycles,
              simulateInOrder(indep, cfg).cycles + 1);
}

TEST(Sim, LoadUseGapHidesBubble)
{
    // An independent instruction between load and use hides the
    // bubble completely at W=1.
    Trace spaced = TraceBuilder()
                       .load(8, 0x10000000)
                       .alu(10)
                       .alu(9, 8)
                       .filler(20)
                       .build();
    Trace indep = TraceBuilder()
                      .load(8, 0x10000000)
                      .alu(10)
                      .alu(9)
                      .filler(20)
                      .build();
    SimConfig cfg = idealSim(1, 2);
    EXPECT_EQ(simulateInOrder(spaced, cfg).cycles,
              simulateInOrder(indep, cfg).cycles);
}

TEST(Sim, DCacheMissBlocksMemoryStage)
{
    // One load with a cold D-cache (real cache, perfect I-side):
    // the L2+memory latency appears in the total.
    SimConfig cfg;
    cfg.machine = idealSim(4, 2).machine;
    cfg.perfectICache = true;
    cfg.perfectTlbs = true;
    cfg.perfectDCache = false;
    Trace tr = TraceBuilder()
                   .filler(8)
                   .load(8, 0x10000000)
                   .filler(8)
                   .build();
    Trace nold = TraceBuilder().filler(8).alu(8).filler(8).build();
    Cycles with_miss = simulateInOrder(tr, cfg).cycles;
    Cycles without = simulateInOrder(nold, cfg).cycles;
    Cycles expected_extra =
        cfg.machine.l2HitCycles + cfg.machine.memCycles - 1;
    EXPECT_GE(with_miss, without + expected_extra - 2);
    EXPECT_LE(with_miss, without + expected_extra + 2);
}

TEST(Sim, SecondLoadToSameLineHits)
{
    SimConfig cfg;
    cfg.machine = idealSim(4, 2).machine;
    cfg.perfectICache = true;
    cfg.perfectTlbs = true;
    Trace two_same = TraceBuilder()
                         .load(8, 0x10000000)
                         .filler(4)
                         .load(9, 0x10000008)
                         .filler(4)
                         .build();
    Trace two_diff = TraceBuilder()
                         .load(8, 0x10000000)
                         .filler(4)
                         .load(9, 0x10010000)
                         .filler(4)
                         .build();
    EXPECT_LT(simulateInOrder(two_same, cfg).cycles,
              simulateInOrder(two_diff, cfg).cycles);
}

TEST(Sim, StoresNeverBlock)
{
    // A cold-missing store costs nothing beyond its slot.
    SimConfig cfg;
    cfg.machine = idealSim(4, 2).machine;
    cfg.perfectICache = true;
    cfg.perfectTlbs = true;
    Trace with_store =
        TraceBuilder().filler(10).store(0x10000000).filler(10).build();
    Trace with_alu = TraceBuilder().filler(10).alu(8).filler(10).build();
    EXPECT_EQ(simulateInOrder(with_store, cfg).cycles,
              simulateInOrder(with_alu, cfg).cycles);
}

// ---- branch penalties ------------------------------------------------------------------

TEST(Sim, CorrectNotTakenBranchIsFree)
{
    SimConfig cfg = idealSim(4, 2);
    cfg.predictor = PredictorKind::NotTaken;
    Trace with_branch =
        TraceBuilder().filler(20).branch(false).filler(20).build();
    Trace plain = TraceBuilder().filler(20).alu(8).filler(20).build();
    EXPECT_EQ(simulateInOrder(with_branch, cfg).cycles,
              simulateInOrder(plain, cfg).cycles);
}

TEST(Sim, CorrectTakenBranchCostsOneBubble)
{
    SimConfig cfg = idealSim(1, 2);
    cfg.predictor = PredictorKind::Taken;
    Trace with_branch =
        TraceBuilder().filler(20).branch(true).filler(20).build();
    Trace plain = TraceBuilder().filler(20).alu(8).filler(20).build();
    SimResult res = simulateInOrder(with_branch, cfg);
    EXPECT_EQ(res.cycles, simulateInOrder(plain, cfg).cycles + 1);
    EXPECT_EQ(res.predictedTakenCorrect, 1u);
    EXPECT_EQ(res.mispredicts, 0u);
}

TEST(Sim, MispredictCostsFrontEndDepth)
{
    // Not-taken predictor on a taken branch: flush penalty ~= D.
    for (std::uint32_t d : {2u, 4u, 6u}) {
        SimConfig cfg = idealSim(1, d);
        cfg.predictor = PredictorKind::NotTaken;
        Trace with_miss =
            TraceBuilder().filler(20).branch(true).filler(20).build();
        Trace plain =
            TraceBuilder().filler(20).alu(8).filler(20).build();
        SimResult res = simulateInOrder(with_miss, cfg);
        EXPECT_EQ(res.mispredicts, 1u);
        EXPECT_EQ(res.cycles,
                  simulateInOrder(plain, cfg).cycles + d)
            << "at front-end depth " << d;
    }
}

TEST(Sim, MispredictedNotTakenAlsoFlushes)
{
    // Taken predictor on a not-taken branch.
    SimConfig cfg = idealSim(1, 4);
    cfg.predictor = PredictorKind::Taken;
    Trace with_miss =
        TraceBuilder().filler(20).branch(false).filler(20).build();
    Trace plain = TraceBuilder().filler(20).alu(8).filler(20).build();
    SimResult res = simulateInOrder(with_miss, cfg);
    EXPECT_EQ(res.mispredicts, 1u);
    EXPECT_EQ(res.cycles, simulateInOrder(plain, cfg).cycles + 4);
}

TEST(Sim, MispredictCounterMatchesPredictorBehaviour)
{
    // A loop-shaped alternating branch (one static PC) under gshare:
    // after warmup, few mispredicts.
    SimConfig cfg = idealSim(4, 2);
    cfg.predictor = PredictorKind::Gshare1K;
    Trace tr;
    for (int i = 0; i < 200; ++i) {
        for (int k = 0; k < 3; ++k) {
            DynInstr di;
            di.pc = 0x1000 + 4 * static_cast<Addr>(k);
            di.op = OpClass::IntAlu;
            di.dst = static_cast<RegIndex>(8 + k);
            tr.push(di);
        }
        DynInstr br;
        br.pc = 0x100c;
        br.op = OpClass::Branch;
        br.taken = i % 2 == 0;
        br.targetPc = br.taken ? 0x1000 : 0;
        tr.push(br);
    }
    SimResult res = simulateInOrder(tr, cfg);
    EXPECT_LT(res.mispredicts, 20u);
}

// ---- I-cache behaviour ---------------------------------------------------------------------

TEST(Sim, ICacheMissStallsFetch)
{
    SimConfig cfg;
    cfg.machine = idealSim(4, 2).machine;
    cfg.perfectDCache = true;
    cfg.perfectTlbs = true;
    Trace tr = TraceBuilder().filler(64).build();
    SimResult res = simulateInOrder(tr, cfg);
    // 64 instructions x 4B = 4 lines -> 4 cold misses to memory.
    Cycles per_miss = cfg.machine.l2HitCycles + cfg.machine.memCycles;
    Cycles ideal = idealCycles(64, 4, 2);
    EXPECT_GE(res.cycles, ideal + 4 * per_miss - 4);
    EXPECT_LE(res.cycles, ideal + 4 * per_miss + 4);
    EXPECT_GT(res.fetchMissStallCycles, 0u);
}

TEST(Sim, WarmICacheRunsIdeally)
{
    // Loop-shaped PCs: after one pass the lines are resident; a
    // second identical pass adds no fetch stalls.
    SimConfig cfg;
    cfg.machine = idealSim(4, 2).machine;
    cfg.perfectDCache = true;
    cfg.perfectTlbs = true;

    auto one_pass = [] {
        TraceBuilder b;
        return b.filler(64).build();
    };
    Trace once = one_pass();
    // Two passes over the same 4 lines.
    Trace twice;
    for (int r = 0; r < 2; ++r) {
        for (const auto &di : once)
            twice.push(di);
    }
    Cycles c1 = simulateInOrder(once, cfg).cycles;
    Cycles c2 = simulateInOrder(twice, cfg).cycles;
    EXPECT_EQ(c2 - c1, 64u / 4u); // second pass: pure issue cycles
}

// ---- diagnostics -----------------------------------------------------------------------------

TEST(Sim, CpiAndSecondsHelpers)
{
    SimResult r;
    r.cycles = 500;
    r.retired = 250;
    EXPECT_DOUBLE_EQ(r.cpi(), 2.0);
    EXPECT_DOUBLE_EQ(r.seconds(1.0), 500e-9);
}

TEST(Sim, GuardPanicsOnImpossibleTraceAreAbsent)
{
    // A full workload trace must always terminate.
    Trace tr = generateTrace(profileByName("sha"), 5000);
    SimConfig cfg = idealSim(4, 6);
    SimResult res = simulateInOrder(tr, cfg);
    EXPECT_EQ(res.retired, tr.size());
}

} // namespace
} // namespace mech
