/**
 * @file
 * Tests for the parallel batch-evaluation engine: determinism of
 * evaluateAll across worker counts over the full 192-point Table 2
 * space, agreement with the plain serial DseStudy loop, ordering,
 * profile reuse across calls, and registry-selected backend sets.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "dse/design_space.hh"
#include "dse/study.hh"
#include "dse/study_runner.hh"
#include "eval/registry.hh"
#include "model/cpi_stack.hh"
#include "workload/suites.hh"

namespace {

using namespace mech;

constexpr InstCount kLen = 20000;

/** Exact (bitwise) equality of two backend results. */
void
expectSameResult(const EvalResult &a, const EvalResult &b,
                 const std::string &where)
{
    EXPECT_EQ(a.backend, b.backend) << where;
    EXPECT_EQ(a.cycles, b.cycles) << where;
    EXPECT_EQ(a.instructions, b.instructions) << where;
    EXPECT_EQ(a.edp, b.edp) << where;
    EXPECT_EQ(a.hasStack, b.hasStack) << where;
    for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
        auto comp = static_cast<CpiComponent>(c);
        EXPECT_EQ(a.stack[comp], b.stack[comp])
            << where << " component " << cpiComponentName(comp);
    }
    EXPECT_EQ(a.detail.has_value(), b.detail.has_value()) << where;
    if (a.detail && b.detail) {
        EXPECT_EQ(a.detail->cycles, b.detail->cycles) << where;
        EXPECT_EQ(a.detail->mispredicts, b.detail->mispredicts)
            << where;
    }
}

void
expectSameEvaluations(const std::vector<StudyResult> &a,
                      const std::vector<StudyResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
        EXPECT_EQ(a[r].benchmark, b[r].benchmark);
        ASSERT_EQ(a[r].evals.size(), b[r].evals.size());
        for (std::size_t i = 0; i < a[r].evals.size(); ++i) {
            const PointEvaluation &ea = a[r].evals[i];
            const PointEvaluation &eb = b[r].evals[i];
            std::string where = a[r].benchmark + " point " +
                                std::to_string(i) + " (" +
                                ea.point.label() + ")";
            // Ordering: both sides must hold the same design point in
            // the same slot.
            EXPECT_EQ(ea.point.label(), eb.point.label()) << where;
            ASSERT_EQ(ea.results.size(), eb.results.size()) << where;
            for (std::size_t k = 0; k < ea.results.size(); ++k)
                expectSameResult(ea.results[k], eb.results[k], where);
        }
    }
}

TEST(StudyRunner, ParallelMatchesSerialOverFullTable2Space)
{
    auto space = table2Space();
    ASSERT_EQ(space.size(), 192u);

    StudyRunner serial({profileByName("sha")}, kLen);
    StudyRunner parallel({profileByName("sha")}, kLen);

    auto one = serial.evaluateAll(space, 1);
    auto many = parallel.evaluateAll(space, 4);

    expectSameEvaluations(one, many);
}

TEST(StudyRunner, MatchesThePlainSerialStudyLoop)
{
    auto space = table2Space();
    const BenchmarkProfile &bench = profileByName("dijkstra");

    // The pre-existing serial path: one study, one explicit loop.
    DseStudy study(bench, kLen);
    std::vector<PointEvaluation> loop;
    loop.reserve(space.size());
    for (const auto &point : space)
        loop.push_back(study.evaluate(point));

    StudyRunner runner({bench}, kLen);
    auto batched = runner.evaluateAll(space, 4);

    ASSERT_EQ(batched.size(), 1u);
    ASSERT_EQ(batched[0].evals.size(), loop.size());
    for (std::size_t i = 0; i < loop.size(); ++i) {
        expectSameResult(loop[i].model(), batched[0].evals[i].model(),
                         "point " + std::to_string(i));
    }
}

TEST(StudyRunner, ShardsMultipleBenchmarksDeterministically)
{
    // A small point list exercises the multi-benchmark sharding
    // without paying for the full space three times.
    auto space = table2Space();
    std::vector<DesignPoint> points(space.begin(), space.begin() + 24);

    std::vector<BenchmarkProfile> benches = {
        profileByName("sha"), profileByName("adpcm_d"),
        profileByName("patricia")};

    StudyRunner serial(benches, kLen);
    StudyRunner parallel(benches, kLen);

    auto one = serial.evaluateAll(points, 1);
    auto many = parallel.evaluateAll(points, 8);

    ASSERT_EQ(one.size(), benches.size());
    for (std::size_t b = 0; b < benches.size(); ++b)
        EXPECT_EQ(one[b].benchmark, benches[b].name);
    expectSameEvaluations(one, many);
}

TEST(StudyRunner, BitIdenticalAcrossTheThreadLadderOnOneRunner)
{
    // The dse_scaling benchmark's shape: ONE runner swept repeatedly
    // at 1, 2 and 8 workers, so the persistent pool is torn down and
    // rebuilt between calls and every ladder step reuses the same
    // warmed studies.  Every step must be bit-identical to the serial
    // sweep — the invariant the scaling fix must not bend.
    auto space = table2Space();
    std::vector<DesignPoint> points(space.begin(), space.begin() + 48);

    StudyRunner runner({profileByName("sha"), profileByName("gsm_c")},
                       kLen);
    auto one = runner.evaluateAll(points, 1);
    for (unsigned threads : {2u, 8u, 1u}) {
        auto step = runner.evaluateAll(points, threads);
        expectSameEvaluations(one, step);
    }
}

TEST(StudyRunner, ReusesProfilesAcrossCalls)
{
    auto space = table2Space();
    std::vector<DesignPoint> points(space.begin(), space.begin() + 8);

    StudyRunner runner({profileByName("stringsearch")}, kLen);
    auto first = runner.evaluateAll(points, 2);
    auto second = runner.evaluateAll(points, 1);
    expectSameEvaluations(first, second);
}

TEST(StudyRunner, SimulationResultsAreDeterministicToo)
{
    // Detailed simulation replays the shared trace; a handful of
    // points keeps runtime modest while covering the sim path.
    auto space = table2Space();
    std::vector<DesignPoint> points = {space.front(), space[95],
                                       space.back()};

    StudyRunner serial({profileByName("qsort")}, kLen,
                       backendSet("model,sim"));
    StudyRunner parallel({profileByName("qsort")}, kLen,
                         backendSet("model,sim"));

    auto one = serial.evaluateAll(points, 1);
    auto many = parallel.evaluateAll(points, 4);

    ASSERT_EQ(many[0].evals.size(), 3u);
    for (const auto &ev : many[0].evals) {
        EXPECT_TRUE(ev.has(kSimBackend));
        EXPECT_TRUE(ev.sim()->detail.has_value());
        EXPECT_TRUE(ev.cpiError().has_value());
    }
    expectSameEvaluations(one, many);
}

TEST(StudyRunner, RegistrySelectedBackendSetIsDeterministic)
{
    // Any registry-selected combination must shard deterministically:
    // here both mechanistic models ("model,ooo") over a slice of the
    // space, 1 vs N threads.
    auto space = table2Space();
    std::vector<DesignPoint> points(space.begin(), space.begin() + 16);

    StudyRunner serial({profileByName("tiffdither")}, kLen,
                       backendSet("model,ooo"));
    StudyRunner parallel({profileByName("tiffdither")}, kLen,
                         backendSet("model,ooo"));

    auto one = serial.evaluateAll(points, 1);
    auto many = parallel.evaluateAll(points, 8);

    // Result order mirrors backend-set order.
    ASSERT_EQ(one[0].evals[0].results.size(), 2u);
    EXPECT_EQ(one[0].evals[0].results[0].backend, kModelBackend);
    EXPECT_EQ(one[0].evals[0].results[1].backend, kOooBackend);
    EXPECT_TRUE(one[0].evals[0].results[1].hasStack);
    // No sim ran, so the model/sim error must be absent, not 0.
    EXPECT_FALSE(one[0].evals[0].cpiError().has_value());
    expectSameEvaluations(one, many);
}

} // namespace
