/**
 * @file
 * Shared helpers for mechsim tests: hand-built micro-traces and
 * idealized simulator configurations that isolate one mechanism at a
 * time.
 */

#ifndef MECH_TESTS_TEST_UTIL_HH
#define MECH_TESTS_TEST_UTIL_HH

#include <cstdint>
#include <vector>

#include "mech/mech.hh"

namespace mech::test {

/** Registers 0..7 are never written in micro-traces (always ready). */
inline constexpr RegIndex kLiveIn = 0;

/** Simulator configuration with perfect memory and no predictor noise. */
inline SimConfig
idealSim(std::uint32_t width = 4, std::uint32_t frontend_depth = 2)
{
    SimConfig cfg;
    cfg.machine.width = width;
    cfg.machine.frontendDepth = frontend_depth;
    cfg.perfectICache = true;
    cfg.perfectDCache = true;
    cfg.perfectTlbs = true;
    return cfg;
}

/**
 * Cycles an N-instruction hazard-free trace takes on an idealized
 * pipeline: ceil(N/W) issue groups plus pipeline fill (D front-end
 * stages + execute + memory) plus the final loop increment.
 */
inline Cycles
idealCycles(InstCount n, std::uint32_t width, std::uint32_t depth)
{
    return (n + width - 1) / width + depth + 2;
}

/** Builder for hand-crafted micro-traces. */
class TraceBuilder
{
  public:
    /** Append a unit-latency ALU op. */
    TraceBuilder &
    alu(RegIndex dst, RegIndex src1 = kLiveIn, RegIndex src2 = kNoReg)
    {
        DynInstr di;
        di.pc = nextPc();
        di.op = OpClass::IntAlu;
        di.dst = dst;
        di.src1 = src1;
        di.src2 = src2;
        tr.push(di);
        return *this;
    }

    /** Append an op of a specific class. */
    TraceBuilder &
    op(OpClass oc, RegIndex dst, RegIndex src1 = kLiveIn,
       RegIndex src2 = kNoReg)
    {
        DynInstr di;
        di.pc = nextPc();
        di.op = oc;
        di.dst = dst;
        di.src1 = src1;
        di.src2 = src2;
        tr.push(di);
        return *this;
    }

    /** Append a load from @p addr. */
    TraceBuilder &
    load(RegIndex dst, Addr addr, RegIndex addr_reg = kLiveIn)
    {
        DynInstr di;
        di.pc = nextPc();
        di.op = OpClass::Load;
        di.dst = dst;
        di.src1 = addr_reg;
        di.effAddr = addr;
        tr.push(di);
        return *this;
    }

    /** Append a store to @p addr. */
    TraceBuilder &
    store(Addr addr, RegIndex data_reg = kLiveIn)
    {
        DynInstr di;
        di.pc = nextPc();
        di.op = OpClass::Store;
        di.src1 = data_reg;
        di.effAddr = addr;
        tr.push(di);
        return *this;
    }

    /** Append a branch with the given outcome. */
    TraceBuilder &
    branch(bool taken, Addr target = 0x9000, RegIndex src = kLiveIn)
    {
        DynInstr di;
        di.pc = nextPc();
        di.op = OpClass::Branch;
        di.src1 = src;
        di.taken = taken;
        di.targetPc = taken ? target : 0;
        tr.push(di);
        return *this;
    }

    /** Append @p n independent ALU filler ops. */
    TraceBuilder &
    filler(int n)
    {
        for (int i = 0; i < n; ++i)
            alu(static_cast<RegIndex>(8 + (fillerReg++ % 20)));
        return *this;
    }

    /** Finish and return the trace. */
    Trace build() { return std::move(tr); }

  private:
    Addr
    nextPc()
    {
        Addr p = pc;
        pc += kInstBytes;
        return p;
    }

    Trace tr;
    Addr pc = 0x1000;
    int fillerReg = 0;
};

} // namespace mech::test

#endif // MECH_TESTS_TEST_UTIL_HH
