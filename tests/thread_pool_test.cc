/**
 * @file
 * Unit tests for the common ThreadPool: inline (0-worker) execution,
 * single and many workers, FIFO ordering, exception propagation,
 * queue draining on destruction, the submit-vs-shutdown race, and the
 * bulk parallelFor path (coverage, chunking, exceptions, concurrent
 * callers).
 */

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace {

using mech::ThreadPool;

TEST(ThreadPool, ZeroWorkersRunsInlineOnSubmittingThread)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);

    std::thread::id ran_on;
    auto fut = pool.submit([&] { ran_on = std::this_thread::get_id(); });
    // Inline execution: the task already ran by the time submit
    // returned, on this very thread.
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPool, ZeroWorkersPreservesSubmissionOrder)
{
    ThreadPool pool(0);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SingleWorkerExecutesTasksInFifoOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workerCount(), 1u);

    std::vector<int> order;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : futs)
        f.get();

    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ManyWorkersRunEveryTaskExactlyOnce)
{
    ThreadPool pool(8);
    EXPECT_EQ(pool.workerCount(), 8u);

    constexpr int kTasks = 500;
    std::atomic<int> runs{0};
    std::vector<std::future<int>> futs;
    futs.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futs.push_back(pool.submit([&runs, i] {
            runs.fetch_add(1, std::memory_order_relaxed);
            return i * i;
        }));
    }
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(runs.load(), kTasks);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    auto a = pool.submit([] { return 21 * 2; });
    auto b = pool.submit([] { return std::string("hello"); });
    EXPECT_EQ(a.get(), 42);
    EXPECT_EQ(b.get(), "hello");
}

TEST(ThreadPool, PropagatesExceptionsToTheFuture)
{
    for (unsigned workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        auto ok = pool.submit([] { return 1; });
        auto bad = pool.submit(
            []() -> int { throw std::runtime_error("task failed"); });
        EXPECT_EQ(ok.get(), 1);
        EXPECT_THROW(bad.get(), std::runtime_error);
        // The pool survives a throwing task.
        EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
    }
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> runs{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit(
                [&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
        }
        // No explicit wait: destruction must run everything queued.
    }
    EXPECT_EQ(runs.load(), 64);
}

TEST(ThreadPool, SubmitWhileStoppingStillSatisfiesTheFuture)
{
    // Regression: a submit() racing shutdown used to strand its task
    // in the queue once every worker had observed the stop flag,
    // leaving the future forever unready.  The contract now is that a
    // task submitted while the pool is stopping runs inline on the
    // submitting thread, so its future always becomes ready.
    std::future<int> follow;
    std::atomic<bool> submitted{false};
    {
        auto pool = std::make_unique<ThreadPool>(1);
        // Raw pointer: reset() nulls the unique_ptr before running
        // the destructor, but the pool object itself stays alive (in
        // its destructor, joining) while the task runs.
        ThreadPool *raw = pool.get();
        std::promise<void> started;
        auto fut = pool->submit([&, raw] {
            started.set_value();
            // Give ~ThreadPool time to raise the stop flag so the
            // nested submit hits the shutdown path.  (Either
            // interleaving must satisfy the future; only the slow
            // path is the regression.)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            follow = raw->submit([] { return 7; });
            submitted.store(true);
        });
        started.get_future().wait();
        pool.reset(); // joins; the worker is still inside the task
    }
    ASSERT_TRUE(submitted.load());
    ASSERT_TRUE(follow.valid());
    EXPECT_EQ(follow.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(follow.get(), 7);
}

TEST(ThreadPool, ParallelForCoversTheRangeExactlyOnce)
{
    for (unsigned workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        constexpr std::size_t kN = 10000;
        std::vector<int> hits(kN, 0);
        // Chunks partition the range, so distinct slots never race.
        pool.parallelFor(kN, 7, [&hits](std::size_t begin,
                                        std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                ++hits[i];
        });
        for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i << " with "
                                  << workers << " workers";
    }
}

TEST(ThreadPool, ParallelForEmptyRangeNeverInvokes)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 4, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInlineAsOneChunk)
{
    // n <= chunk short-circuits to a single inline call on the
    // calling thread, even with workers available.
    ThreadPool pool(4);
    std::thread::id ran_on;
    int calls = 0;
    pool.parallelFor(10, 100, [&](std::size_t begin, std::size_t end) {
        ran_on = std::this_thread::get_id();
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 10u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPool, ParallelForPropagatesTheFirstChunkException)
{
    for (unsigned workers : {0u, 2u}) {
        ThreadPool pool(workers);
        std::atomic<int> processed{0};
        EXPECT_THROW(
            pool.parallelFor(
                64, 1,
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                        if (i == 32)
                            throw std::runtime_error("chunk");
                        ++processed;
                    }
                }),
            std::runtime_error);
        // Inline: one [0, 64) chunk aborts at index 32.  Pooled: only
        // the throwing single-index chunk is lost — the rest of the
        // range still retires, and the error surfaces at the end.
        EXPECT_EQ(processed.load(), workers == 0 ? 32 : 63);
        // The pool survives for the next bulk job.
        std::atomic<int> after{0};
        pool.parallelFor(8, 1,
                         [&](std::size_t begin, std::size_t end) {
                             after += static_cast<int>(end - begin);
                         });
        EXPECT_EQ(after.load(), 8);
    }
}

TEST(ThreadPool, ParallelForManyConcurrentCallers)
{
    // Several threads publish bulk jobs into one pool at once; each
    // caller participates in its own job and must see exactly its
    // range processed.
    ThreadPool pool(4);
    constexpr int kCallers = 6;
    constexpr std::size_t kN = 4096;
    std::vector<std::thread> callers;
    std::atomic<long long> total{0};
    for (int c = 0; c < kCallers; ++c) {
        callers.emplace_back([&pool, &total] {
            std::atomic<long long> mine{0};
            pool.parallelFor(kN, 16,
                             [&mine](std::size_t begin,
                                     std::size_t end) {
                                 mine += static_cast<long long>(
                                     end - begin);
                             });
            EXPECT_EQ(mine.load(),
                      static_cast<long long>(kN));
            total += mine.load();
        });
    }
    for (auto &t : callers)
        t.join();
    EXPECT_EQ(total.load(), static_cast<long long>(kCallers) * kN);
}

TEST(ThreadPool, BulkChunkIsPositiveAndWholeRangeWhenInline)
{
    ThreadPool inline_pool(0);
    EXPECT_EQ(inline_pool.bulkChunk(0), 1u);
    EXPECT_EQ(inline_pool.bulkChunk(192), 192u);

    ThreadPool pool(3);
    EXPECT_EQ(pool.bulkChunk(0), 1u);
    EXPECT_GE(pool.bulkChunk(5), 1u);
    // ~8 chunks per participant (3 workers + the caller).
    EXPECT_EQ(pool.bulkChunk(3200), 100u);
}

TEST(ThreadPool, DefaultWorkerCountIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

TEST(ThreadPool, SanitizeTreatsZeroAndNegativeAsWholeMachine)
{
    // The tools' shared `--threads 0` (or omitted) convention:
    // "use every hardware thread".
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(0),
              ThreadPool::defaultWorkerCount());
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(-5),
              ThreadPool::defaultWorkerCount());
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(3), 3u);
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(1 << 20),
              ThreadPool::kMaxWorkers);
}

} // namespace
