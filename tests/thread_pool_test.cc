/**
 * @file
 * Unit tests for the common ThreadPool: inline (0-worker) execution,
 * single and many workers, FIFO ordering, exception propagation, and
 * queue draining on destruction.
 */

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace {

using mech::ThreadPool;

TEST(ThreadPool, ZeroWorkersRunsInlineOnSubmittingThread)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);

    std::thread::id ran_on;
    auto fut = pool.submit([&] { ran_on = std::this_thread::get_id(); });
    // Inline execution: the task already ran by the time submit
    // returned, on this very thread.
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPool, ZeroWorkersPreservesSubmissionOrder)
{
    ThreadPool pool(0);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SingleWorkerExecutesTasksInFifoOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workerCount(), 1u);

    std::vector<int> order;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : futs)
        f.get();

    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ManyWorkersRunEveryTaskExactlyOnce)
{
    ThreadPool pool(8);
    EXPECT_EQ(pool.workerCount(), 8u);

    constexpr int kTasks = 500;
    std::atomic<int> runs{0};
    std::vector<std::future<int>> futs;
    futs.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futs.push_back(pool.submit([&runs, i] {
            runs.fetch_add(1, std::memory_order_relaxed);
            return i * i;
        }));
    }
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(runs.load(), kTasks);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    auto a = pool.submit([] { return 21 * 2; });
    auto b = pool.submit([] { return std::string("hello"); });
    EXPECT_EQ(a.get(), 42);
    EXPECT_EQ(b.get(), "hello");
}

TEST(ThreadPool, PropagatesExceptionsToTheFuture)
{
    for (unsigned workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        auto ok = pool.submit([] { return 1; });
        auto bad = pool.submit(
            []() -> int { throw std::runtime_error("task failed"); });
        EXPECT_EQ(ok.get(), 1);
        EXPECT_THROW(bad.get(), std::runtime_error);
        // The pool survives a throwing task.
        EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
    }
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> runs{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit(
                [&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
        }
        // No explicit wait: destruction must run everything queued.
    }
    EXPECT_EQ(runs.load(), 64);
}

TEST(ThreadPool, DefaultWorkerCountIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

TEST(ThreadPool, SanitizeTreatsZeroAndNegativeAsWholeMachine)
{
    // The tools' shared `--threads 0` (or omitted) convention:
    // "use every hardware thread".
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(0),
              ThreadPool::defaultWorkerCount());
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(-5),
              ThreadPool::defaultWorkerCount());
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(3), 3u);
    EXPECT_EQ(ThreadPool::sanitizeWorkerCount(1 << 20),
              ThreadPool::kMaxWorkers);
}

} // namespace
