/**
 * @file
 * Tests for the ISA definitions and the dynamic-trace container,
 * including the structural validity checker.
 */

#include <gtest/gtest.h>

#include "isa/machine_params.hh"
#include "isa/op_class.hh"
#include "test_util.hh"
#include "trace/trace.hh"

namespace mech {
namespace {

using test::TraceBuilder;

// ---- op classes -----------------------------------------------------------------

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isLoad(OpClass::Load));
    EXPECT_TRUE(isStore(OpClass::Store));
    EXPECT_TRUE(isMem(OpClass::Load));
    EXPECT_TRUE(isMem(OpClass::Store));
    EXPECT_FALSE(isMem(OpClass::IntAlu));
    EXPECT_TRUE(isBranch(OpClass::Branch));
    EXPECT_FALSE(isBranch(OpClass::Nop));
}

TEST(OpClass, LongLatencyClasses)
{
    EXPECT_TRUE(isLongLatencyClass(OpClass::IntMult));
    EXPECT_TRUE(isLongLatencyClass(OpClass::IntDiv));
    EXPECT_TRUE(isLongLatencyClass(OpClass::FpAlu));
    EXPECT_TRUE(isLongLatencyClass(OpClass::FpMult));
    EXPECT_TRUE(isLongLatencyClass(OpClass::FpDiv));
    EXPECT_FALSE(isLongLatencyClass(OpClass::IntAlu));
    EXPECT_FALSE(isLongLatencyClass(OpClass::Load));
    EXPECT_FALSE(isLongLatencyClass(OpClass::Branch));
}

TEST(OpClass, NamesAreDistinct)
{
    std::set<std::string_view> names;
    for (OpClass oc : kAllOpClasses)
        names.insert(opClassName(oc));
    EXPECT_EQ(names.size(), kNumOpClasses);
}

// ---- machine params --------------------------------------------------------------

TEST(MachineParams, ExecLatencyTable)
{
    MachineParams m;
    m.latIntMult = 4;
    m.latIntDiv = 20;
    EXPECT_EQ(m.execLatency(OpClass::IntMult), 4u);
    EXPECT_EQ(m.execLatency(OpClass::IntDiv), 20u);
    EXPECT_EQ(m.execLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(m.execLatency(OpClass::Load), 1u);
    EXPECT_EQ(m.execLatency(OpClass::Branch), 1u);
}

TEST(MachineParams, DepthIsFrontEndPlusThree)
{
    MachineParams m;
    m.frontendDepth = 6;
    EXPECT_EQ(m.depth(), 9u);
}

TEST(MachineParamsDeath, ValidateRejectsBadWidth)
{
    MachineParams m;
    m.width = 0;
    EXPECT_EXIT(m.validate(), ::testing::ExitedWithCode(1), "width");
}

TEST(MachineParamsDeath, ValidateRejectsShallowFrontEnd)
{
    MachineParams m;
    m.frontendDepth = 1;
    EXPECT_EXIT(m.validate(), ::testing::ExitedWithCode(1), "front-end");
}

// ---- trace container ----------------------------------------------------------------

TEST(Trace, MixCounts)
{
    Trace tr = TraceBuilder()
                   .alu(8)
                   .alu(9)
                   .load(10, 0x10000000)
                   .branch(true)
                   .build();
    InstMix mix = tr.mix();
    EXPECT_EQ(mix.total, 4u);
    EXPECT_EQ(mix.of(OpClass::IntAlu), 2u);
    EXPECT_EQ(mix.of(OpClass::Load), 1u);
    EXPECT_EQ(mix.of(OpClass::Branch), 1u);
    EXPECT_DOUBLE_EQ(mix.fraction(OpClass::IntAlu), 0.5);
}

TEST(Trace, EmptyMix)
{
    Trace tr;
    EXPECT_TRUE(tr.empty());
    EXPECT_DOUBLE_EQ(tr.mix().fraction(OpClass::Load), 0.0);
}

TEST(Trace, ClearReleases)
{
    Trace tr = TraceBuilder().filler(10).build();
    tr.clear();
    EXPECT_TRUE(tr.empty());
}

// ---- validity checker -----------------------------------------------------------------

TEST(Validate, AcceptsWellFormedTrace)
{
    Trace tr = TraceBuilder()
                   .alu(8)
                   .load(9, 0x10000000)
                   .store(0x10000040, 8)
                   .branch(true)
                   .branch(false)
                   .build();
    std::string err;
    EXPECT_TRUE(validateTrace(tr, &err)) << err;
}

TEST(Validate, RejectsRegisterOutOfRange)
{
    Trace tr;
    DynInstr di;
    di.op = OpClass::IntAlu;
    di.dst = 200;
    tr.push(di);
    std::string err;
    EXPECT_FALSE(validateTrace(tr, &err));
    EXPECT_NE(err.find("register"), std::string::npos);
}

TEST(Validate, RejectsMemOpWithoutAddress)
{
    Trace tr;
    DynInstr di;
    di.op = OpClass::Load;
    di.dst = 8;
    tr.push(di);
    EXPECT_FALSE(validateTrace(tr));
}

TEST(Validate, RejectsNonMemOpWithAddress)
{
    Trace tr;
    DynInstr di;
    di.op = OpClass::IntAlu;
    di.dst = 8;
    di.effAddr = 0x1000;
    tr.push(di);
    EXPECT_FALSE(validateTrace(tr));
}

TEST(Validate, RejectsTakenBranchWithoutTarget)
{
    Trace tr;
    DynInstr di;
    di.op = OpClass::Branch;
    di.taken = true;
    tr.push(di);
    EXPECT_FALSE(validateTrace(tr));
}

TEST(Validate, RejectsTakenNonBranch)
{
    Trace tr;
    DynInstr di;
    di.op = OpClass::IntAlu;
    di.dst = 8;
    di.taken = true;
    tr.push(di);
    EXPECT_FALSE(validateTrace(tr));
}

TEST(Validate, RejectsStoreWithDestination)
{
    Trace tr;
    DynInstr di;
    di.op = OpClass::Store;
    di.dst = 8;
    di.effAddr = 0x1000;
    tr.push(di);
    EXPECT_FALSE(validateTrace(tr));
}

TEST(Validate, ReportsFirstViolationIndex)
{
    Trace tr = TraceBuilder().alu(8).alu(9).build();
    DynInstr bad;
    bad.op = OpClass::Load; // no effAddr
    bad.dst = 10;
    tr.push(bad);
    std::string err;
    EXPECT_FALSE(validateTrace(tr, &err));
    EXPECT_NE(err.find("instruction 2"), std::string::npos);
}

} // namespace
} // namespace mech
