/**
 * @file
 * Tests for the synthetic workload substrate: program building,
 * trace execution, determinism, structural invariants, profile
 * registries, and that the generator knobs actually steer the
 * statistics they claim to steer.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "trace/trace.hh"
#include "workload/builder.hh"
#include "workload/executor.hh"
#include "workload/suites.hh"

namespace mech {
namespace {

BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile p;
    p.name = "tiny";
    p.seed = 77;
    p.numLoops = 2;
    p.blocksPerLoop = 3;
    p.instrsPerBlock = 10;
    p.tripCount = 8;
    p.guardFraction = 0.5;
    p.wLoad = 0.2;
    p.wStore = 0.1;
    return p;
}

// ---- program structure ---------------------------------------------------------

TEST(Builder, StructureMatchesProfile)
{
    Program prog = buildProgram(tinyProfile());
    EXPECT_EQ(prog.loops.size(), 2u);
    for (const auto &loop : prog.loops) {
        EXPECT_EQ(loop.blocks.size(), 3u);
        EXPECT_EQ(loop.tripCount, 8u);
    }
    EXPECT_EQ(prog.prologue.size(),
              static_cast<std::size_t>(kNumLiveInRegs));
}

TEST(Builder, DeterministicForSameSeed)
{
    Program a = buildProgram(tinyProfile());
    Program b = buildProgram(tinyProfile());
    ASSERT_EQ(a.staticInstCount(), b.staticInstCount());
    ASSERT_EQ(a.loops.size(), b.loops.size());
    for (std::size_t l = 0; l < a.loops.size(); ++l) {
        const auto &la = a.loops[l], &lb = b.loops[l];
        ASSERT_EQ(la.blocks.size(), lb.blocks.size());
        for (std::size_t k = 0; k < la.blocks.size(); ++k) {
            ASSERT_EQ(la.blocks[k].body.size(), lb.blocks[k].body.size());
            for (std::size_t i = 0; i < la.blocks[k].body.size(); ++i) {
                EXPECT_EQ(la.blocks[k].body[i].op,
                          lb.blocks[k].body[i].op);
                EXPECT_EQ(la.blocks[k].body[i].dst,
                          lb.blocks[k].body[i].dst);
            }
        }
    }
}

TEST(Builder, SeedChangesProgram)
{
    BenchmarkProfile p = tinyProfile();
    Program a = buildProgram(p);
    p.seed = 78;
    Program b = buildProgram(p);
    bool differs = a.staticInstCount() != b.staticInstCount();
    if (!differs) {
        for (std::size_t l = 0; !differs && l < a.loops.size(); ++l) {
            for (std::size_t k = 0;
                 !differs && k < a.loops[l].blocks.size(); ++k) {
                const auto &ba = a.loops[l].blocks[k].body;
                const auto &bb = b.loops[l].blocks[k].body;
                differs = ba.size() != bb.size();
                for (std::size_t i = 0;
                     !differs && i < ba.size(); ++i) {
                    differs = ba[i].op != bb[i].op ||
                              ba[i].src1 != bb[i].src1;
                }
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST(Builder, PcsAreContiguousAndUnique)
{
    Program prog = buildProgram(tinyProfile());
    Addr expected = kTextBase;
    for (const auto &si : prog.prologue) {
        EXPECT_EQ(si.pc, expected);
        expected += kInstBytes;
    }
    for (const auto &loop : prog.loops) {
        for (const auto &block : loop.blocks) {
            if (block.guarded) {
                EXPECT_EQ(block.guard.pc, expected);
                expected += kInstBytes;
            }
            for (const auto &si : block.body) {
                EXPECT_EQ(si.pc, expected);
                expected += kInstBytes;
            }
        }
        EXPECT_EQ(loop.counterInc.pc, expected);
        expected += kInstBytes;
        EXPECT_EQ(loop.backEdge.pc, expected);
        expected += kInstBytes;
    }
}

TEST(Builder, BackEdgeTargetsLoopHead)
{
    Program prog = buildProgram(tinyProfile());
    Addr cursor = kTextBase +
                  static_cast<Addr>(prog.prologue.size()) * kInstBytes;
    for (const auto &loop : prog.loops) {
        EXPECT_EQ(loop.backEdgeTarget, cursor);
        cursor = loop.backEdge.pc + kInstBytes;
    }
}

TEST(Builder, GuardTargetSkipsBlockBody)
{
    Program prog = buildProgram(tinyProfile());
    for (const auto &loop : prog.loops) {
        for (const auto &block : loop.blocks) {
            if (!block.guarded)
                continue;
            Addr expected = block.guard.pc + kInstBytes +
                            static_cast<Addr>(block.body.size()) *
                                kInstBytes;
            EXPECT_EQ(block.guardTarget, expected);
        }
    }
}

TEST(Builder, RegionsAreLaidOutDisjoint)
{
    BenchmarkProfile p = tinyProfile();
    p.numRegions = 4;
    p.regionKB = 64;
    Program prog = buildProgram(p);
    for (std::size_t i = 1; i < prog.regions.size(); ++i) {
        EXPECT_GE(prog.regions[i].base,
                  prog.regions[i - 1].base +
                      prog.regions[i - 1].sizeBytes);
    }
}

TEST(Builder, MemStreamsAreDense)
{
    Program prog = buildProgram(tinyProfile());
    std::vector<bool> seen(prog.numMemStreams, false);
    for (const auto &loop : prog.loops) {
        for (const auto &block : loop.blocks) {
            for (const auto &si : block.body) {
                if (isMem(si.op)) {
                    ASSERT_LT(si.memStreamId, prog.numMemStreams);
                    seen[si.memStreamId] = true;
                }
            }
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

// ---- trace execution -------------------------------------------------------------

TEST(Executor, TraceIsValid)
{
    Trace tr = generateTrace(tinyProfile(), 5000);
    std::string err;
    EXPECT_TRUE(validateTrace(tr, &err)) << err;
}

TEST(Executor, EveryBenchmarkProducesValidTraces)
{
    for (const auto &bench : mibenchSuite()) {
        Trace tr = generateTrace(bench, 3000);
        std::string err;
        EXPECT_TRUE(validateTrace(tr, &err))
            << bench.name << ": " << err;
        EXPECT_GE(tr.size(), 3000u);
    }
    for (const auto &bench : specLikeSuite()) {
        Trace tr = generateTrace(bench, 3000);
        std::string err;
        EXPECT_TRUE(validateTrace(tr, &err))
            << bench.name << ": " << err;
    }
}

TEST(Executor, DeterministicTraces)
{
    Trace a = generateTrace(tinyProfile(), 4000);
    Trace b = generateTrace(tinyProfile(), 4000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].effAddr, b[i].effAddr);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(Executor, RerunsAreIdentical)
{
    Program prog = buildProgram(tinyProfile());
    TraceExecutor exec(prog, 99);
    Trace a = exec.run(2000);
    Trace b = exec.run(2000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].effAddr, b[i].effAddr);
}

TEST(Executor, BackEdgesAreTakenPerTripCount)
{
    BenchmarkProfile p = tinyProfile();
    p.guardFraction = 0.0;
    p.numLoops = 1;
    p.tripCount = 10;
    Program prog = buildProgram(p);
    TraceExecutor exec(prog, 5);
    // Run exactly one loop entry's worth of instructions.
    std::uint64_t iter_len = prog.loops[0].iterationLength();
    Trace tr = exec.run(kNumLiveInRegs + iter_len * 10 - 1);

    std::uint64_t taken = 0, not_taken = 0;
    for (const auto &di : tr) {
        if (isBranch(di.op))
            (di.taken ? taken : not_taken) += 1;
    }
    EXPECT_EQ(taken, 9u);     // 9 back edges taken
    EXPECT_EQ(not_taken, 1u); // final exit
}

TEST(Executor, GuardSkipsBlockWhenTaken)
{
    BenchmarkProfile p = tinyProfile();
    p.guardFraction = 1.0;
    p.guardTakenBias = 1.0;      // every guard taken
    p.hardBranchFraction = 0.0;
    p.correlatedFraction = 0.0;
    // Force Biased streams by eliminating the periodic choice: with
    // bias 1.0 even periodic streams fire every time, so either way
    // every block is skipped.
    Program prog = buildProgram(p);
    TraceExecutor exec(prog, 7);
    Trace tr = exec.run(500);
    // Only prologue, guards, counter increments and back edges: no
    // block bodies at all (all loads/stores/alu come from prologue).
    for (std::size_t i = kNumLiveInRegs; i < tr.size(); ++i) {
        bool is_ctrl = isBranch(tr[i].op);
        bool is_counter = tr[i].op == OpClass::IntAlu &&
                          tr[i].dst >= 28;
        EXPECT_TRUE(is_ctrl || is_counter)
            << "unexpected op at " << i << ": "
            << opClassName(tr[i].op);
    }
}

TEST(Executor, SequentialStreamsWalkForward)
{
    BenchmarkProfile p = tinyProfile();
    p.wLoad = 1.0;
    p.wIntAlu = 0.0;
    p.wStore = 0.0;
    p.wSeq = 1.0;
    p.guardFraction = 0.0;
    Program prog = buildProgram(p);
    TraceExecutor exec(prog, 3);
    Trace tr = exec.run(300);
    // Group loads by pc; each stream's addresses must advance by 8
    // (modulo wrap).
    std::map<Addr, Addr> last;
    for (const auto &di : tr) {
        if (di.op != OpClass::Load)
            continue;
        auto it = last.find(di.pc);
        if (it != last.end() && di.effAddr > it->second) {
            EXPECT_EQ(di.effAddr - it->second, 8u);
        }
        last[di.pc] = di.effAddr;
    }
}

TEST(Executor, AddressesStayInsideRegions)
{
    BenchmarkProfile p = tinyProfile();
    p.wRandom = 1.0;
    p.wSeq = 0.0;
    p.numRegions = 2;
    p.regionKB = 4;
    Program prog = buildProgram(p);
    TraceExecutor exec(prog, 11);
    Trace tr = exec.run(2000);
    for (const auto &di : tr) {
        if (!isMem(di.op))
            continue;
        bool inside = false;
        for (const auto &region : prog.regions) {
            if (di.effAddr >= region.base &&
                di.effAddr < region.base + region.sizeBytes) {
                inside = true;
            }
        }
        EXPECT_TRUE(inside);
    }
}

// ---- knob steering -----------------------------------------------------------------

TEST(Knobs, LoadWeightSteersLoadFraction)
{
    BenchmarkProfile lo = tinyProfile();
    lo.wLoad = 0.05;
    BenchmarkProfile hi = tinyProfile();
    hi.wLoad = 0.6;
    double f_lo = generateTrace(lo, 20000).mix().fraction(OpClass::Load);
    double f_hi = generateTrace(hi, 20000).mix().fraction(OpClass::Load);
    EXPECT_LT(f_lo, f_hi);
    EXPECT_GT(f_hi, 0.2);
}

TEST(Knobs, MultWeightCreatesMultiplies)
{
    BenchmarkProfile p = tinyProfile();
    p.wIntMult = 0.3;
    double f =
        generateTrace(p, 20000).mix().fraction(OpClass::IntMult);
    EXPECT_GT(f, 0.05);
}

TEST(Knobs, GuardFractionSteersBranchFraction)
{
    BenchmarkProfile few = tinyProfile();
    few.guardFraction = 0.0;
    BenchmarkProfile many = tinyProfile();
    many.guardFraction = 1.0;
    many.instrsPerBlock = 5;
    double f_few =
        generateTrace(few, 20000).mix().fraction(OpClass::Branch);
    double f_many =
        generateTrace(many, 20000).mix().fraction(OpClass::Branch);
    EXPECT_LT(f_few, f_many);
}

// ---- suites ---------------------------------------------------------------------------

TEST(Suites, MibenchHas19DistinctNames)
{
    const auto &suite = mibenchSuite();
    EXPECT_EQ(suite.size(), 19u);
    std::set<std::string> names;
    for (const auto &p : suite)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 19u);
}

TEST(Suites, SpecLikeNonEmptyAndDistinct)
{
    const auto &suite = specLikeSuite();
    EXPECT_GE(suite.size(), 8u);
    std::set<std::string> names;
    for (const auto &p : suite)
        names.insert(p.name);
    EXPECT_EQ(names.size(), suite.size());
}

TEST(Suites, LookupByNameAndAliases)
{
    EXPECT_EQ(profileByName("sha").name, "sha");
    EXPECT_EQ(profileByName("mcf").name, "mcf");
    EXPECT_EQ(profileByName("cjpeg").name, "jpeg_c");
    EXPECT_EQ(profileByName("djpeg").name, "jpeg_d");
    EXPECT_EQ(profileByName("toast").name, "gsm_c");
}

TEST(Suites, BigCodeBenchmarksExceedL1I)
{
    EXPECT_GT(buildProgram(profileByName("jpeg_c")).textBytes(),
              32u * 1024u);
    EXPECT_GT(buildProgram(profileByName("gcc")).textBytes(),
              32u * 1024u);
    EXPECT_LT(buildProgram(profileByName("sha")).textBytes(),
              32u * 1024u);
}

TEST(Suites, IlpPolesDifferInChains)
{
    EXPECT_GT(profileByName("sha").ilpChains,
              profileByName("dijkstra").ilpChains + 3.0);
}

} // namespace
} // namespace mech
