/**
 * @file
 * Calibration diagnostic: per-benchmark model-vs-simulator breakdown.
 *
 * Prints each model penalty component next to the simulator's stall
 * diagnostics so systematic modeling bias can be localized.  Not part
 * of the library API; a developer tool.
 */

#include <cstdlib>
#include <iostream>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    InstCount n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
    DesignPoint point = defaultDesignPoint();
    if (argc > 2)
        point.width = static_cast<std::uint32_t>(std::atoi(argv[2]));

    TextTable table({"bench", "mCPI", "sCPI", "err%", "m.deps", "s.deps",
                     "m.taken", "s.taken", "m.miss", "s.fetchmiss",
                     "m.bpred", "s.bpredstall", "m.LL+l2"});

    for (const auto &bench : mibenchSuite()) {
        DseStudy study(bench, n);
        PointEvaluation ev = study.evaluate(point, true);
        const auto &st = ev.model.stack;
        const SimResult &sim = *ev.sim;
        double N = static_cast<double>(study.profile().program.n);

        auto cpi = [N](double cycles) { return cycles / N; };

        table.addRow({
            bench.name,
            TextTable::num(ev.model.cpi(), 3),
            TextTable::num(sim.cpi(), 3),
            TextTable::num(ev.cpiError() * 100.0, 1),
            TextTable::num(cpi(st.dependencies()), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.dependencyStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::BpredTakenHit]), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.takenBubbleCycles)), 3),
            TextTable::num(cpi(st.ifetch() + st.tlb()), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.fetchMissStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::BpredMiss]), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.mispredictStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::LongLat] +
                               st[CpiComponent::L2Access] +
                               st[CpiComponent::L2Miss]), 3),
        });
    }
    table.print(std::cout);
    return 0;
}
