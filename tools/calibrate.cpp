/**
 * @file
 * Calibration diagnostic: per-benchmark model-vs-simulator breakdown.
 *
 * Prints each model penalty component next to the simulator's stall
 * diagnostics so systematic modeling bias can be localized.  Not part
 * of the library API; a developer tool.
 */

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <iterator>
#include <vector>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    InstCount n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
    DesignPoint point = defaultDesignPoint();
    if (argc > 2)
        point.width = static_cast<std::uint32_t>(std::atoi(argv[2]));
    unsigned nthreads =
        argc > 3 ? ThreadPool::sanitizeWorkerCount(std::atoll(argv[3]))
                 : ThreadPool::defaultWorkerCount();

    TextTable table({"bench", "mCPI", "sCPI", "err%", "m.deps", "s.deps",
                     "m.taken", "s.taken", "m.miss", "s.fetchmiss",
                     "m.bpred", "s.bpredstall", "m.LL+l2"});

    // Batch: every benchmark profiled and (model + sim) evaluated at
    // the chosen point, sharded across the pool.  Groups of nthreads
    // benchmarks bound peak memory: each study pins its full trace
    // (and captured L2 stream), and one point per benchmark gains
    // nothing from keeping profiles cached beyond its group.
    const auto &suite = mibenchSuite();
    const std::size_t group_size = std::max(1u, nthreads);
    std::vector<StudyResult> results;
    for (std::size_t at = 0; at < suite.size(); at += group_size) {
        auto last =
            suite.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(suite.size(), at + group_size));
        StudyRunner runner(
            {suite.begin() + static_cast<std::ptrdiff_t>(at), last}, n,
            true);
        auto group = runner.evaluateAll({point}, nthreads);
        results.insert(results.end(),
                       std::make_move_iterator(group.begin()),
                       std::make_move_iterator(group.end()));
    }

    for (const auto &result : results) {
        const PointEvaluation &ev = result.evals.at(0);
        const auto &st = ev.model.stack;
        const SimResult &sim = *ev.sim;
        double N = static_cast<double>(ev.model.instructions);

        auto cpi = [N](double cycles) { return cycles / N; };

        table.addRow({
            result.benchmark,
            TextTable::num(ev.model.cpi(), 3),
            TextTable::num(sim.cpi(), 3),
            TextTable::num(ev.cpiError() * 100.0, 1),
            TextTable::num(cpi(st.dependencies()), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.dependencyStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::BpredTakenHit]), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.takenBubbleCycles)), 3),
            TextTable::num(cpi(st.ifetch() + st.tlb()), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.fetchMissStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::BpredMiss]), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.mispredictStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::LongLat] +
                               st[CpiComponent::L2Access] +
                               st[CpiComponent::L2Miss]), 3),
        });
    }
    table.print(std::cout);
    return 0;
}
