/**
 * @file
 * Calibration diagnostic: per-benchmark model-vs-simulator breakdown.
 *
 * Prints each model penalty component next to the simulator's stall
 * diagnostics so systematic modeling bias can be localized.  Not part
 * of the library API; a developer tool.
 *
 * With --profile-dir, benchmarks whose `.mprof` artifacts exist there
 * (written by mech_profile) are loaded instead of re-profiled.
 */

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    InstCount n = 200000;
    unsigned width = 0;
    unsigned nthreads = 0;
    std::string profile_dir;
    std::string mdesc_path;

    cli::ArgParser parser(
        "calibrate",
        "per-benchmark model-vs-simulator penalty breakdown");
    parser.add("instructions", "N", "dynamic instructions per trace",
               &n);
    parser.add("width", "W", "override the superscalar width",
               &width);
    parser.add("threads", "N",
               "worker threads (0 = all hardware threads)", &nthreads);
    parser.add("profile-dir", "dir",
               "load .mprof artifacts from this directory instead of "
               "re-profiling",
               &profile_dir);
    parser.add("mdesc", "file",
               "calibrate a characterized .mdesc machine description "
               "instead of the built-in Table 1 parameters",
               &mdesc_path);
    parser.parse(argc, argv);
    nthreads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(nthreads));

    DesignPoint point = defaultDesignPoint();
    if (!mdesc_path.empty())
        point = designPointFor(applyMachineDescription(mdesc_path));
    if (width)
        point.width = width;

    TextTable table({"bench", "mCPI", "sCPI", "err%", "m.deps", "s.deps",
                     "m.taken", "s.taken", "m.miss", "s.fetchmiss",
                     "m.bpred", "s.bpredstall", "m.LL+l2"});

    // Batch: every benchmark profiled (or loaded) and evaluated by
    // the model and detailed-simulation backends at the chosen point,
    // sharded across the pool.  Groups of nthreads benchmarks bound
    // peak memory: each study pins its full trace (and captured L2
    // stream), and one point per benchmark gains nothing from keeping
    // profiles cached beyond its group.
    const auto &suite = mibenchSuite();
    const BackendSet backends = backendSet("model,sim");
    const std::size_t group_size = std::max(1u, nthreads);
    std::vector<StudyResult> results;
    for (std::size_t at = 0; at < suite.size(); at += group_size) {
        auto last =
            suite.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(suite.size(), at + group_size));
        StudyRunner runner(
            {suite.begin() + static_cast<std::ptrdiff_t>(at), last}, n,
            backends);
        if (!profile_dir.empty())
            runner.useProfileDir(profile_dir);
        auto group = runner.evaluateAll({point}, nthreads);
        results.insert(results.end(),
                       std::make_move_iterator(group.begin()),
                       std::make_move_iterator(group.end()));
    }

    for (const auto &result : results) {
        const PointEvaluation &ev = result.evals.at(0);
        const EvalResult &model = ev.model();
        const auto &st = model.stack;
        const SimResult &sim = *ev.sim()->detail;
        double N = static_cast<double>(model.instructions);

        auto cpi = [N](double cycles) { return cycles / N; };

        table.addRow({
            result.benchmark,
            TextTable::num(model.cpi(), 3),
            TextTable::num(ev.sim()->cpi(), 3),
            // Both backends ran, so the error is always present;
            // value() keeps "no sim" loudly distinct from 0% error.
            TextTable::num(ev.cpiError().value() * 100.0, 1),
            TextTable::num(cpi(st.dependencies()), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.dependencyStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::BpredTakenHit]), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.takenBubbleCycles)), 3),
            TextTable::num(cpi(st.ifetch() + st.tlb()), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.fetchMissStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::BpredMiss]), 3),
            TextTable::num(cpi(static_cast<double>(
                sim.mispredictStallCycles)), 3),
            TextTable::num(cpi(st[CpiComponent::LongLat] +
                               st[CpiComponent::L2Access] +
                               st[CpiComponent::L2Miss]), 3),
        });
    }
    table.print(std::cout);
    return 0;
}
