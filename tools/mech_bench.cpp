/**
 * @file
 * mech_bench: the repo's named micro/macro benchmarks behind the CI
 * perf gate.
 *
 * Covers every throughput the paper's speedup story rests on:
 *
 *   profiler           profiling pass throughput        insns/s
 *   stack_distance     StackDistanceSimulator::access   accesses/s
 *   inorder_sim        detailed in-order simulation     cycles/s
 *   oosim_cycles       out-of-order simulation          cycles/s
 *   characterize_infer full machine characterizations   inferences/s
 *   model_eval         analytical model evaluations     evals/s
 *   profile_roundtrip  .mprof save + load round trip    roundtrips/s
 *   dse_scaling        parallel DSE sweep, 1..N thr     evals/s
 *   search_pareto      genetic Pareto search + cache    evals/s
 *   serve_throughput   warm mech_serve session          requests/s
 *
 * Each benchmark is measured with warmup + adaptive iteration count +
 * min-of-N repetitions (src/common/bench.hh) and lands in a
 * schema-versioned JSON artifact (--json).  With --baseline the run
 * is compared against a checked-in artifact and the process exits
 * nonzero on any slowdown beyond --max-slowdown — the CI perf gate.
 */

#include <atomic>
#include <chrono>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "common/bench.hh"
#include "harness.hh"
#include "mech/mech.hh"

namespace {

using namespace mech;

constexpr const char *kSuite = "mech_bench";
constexpr const char *kBenchName = "jpeg_c";

struct Options
{
    InstCount instructions = 60000;
    unsigned repetitions = 5;
    double minTimeMs = 50.0;
    double maxSlowdown = 2.0;
    double minScaling = 0.0;
    double minSaturation = 0.0;
    unsigned threads = 0;
    std::string jsonPath;
    std::string baselinePath;
    std::string filter;
    std::string traceOut;
    bool list = false;
};

/**
 * Process-level accounting records: peak resident set and CPU
 * utilization (process CPU seconds over wall seconds — above 1.0
 * means the multi-threaded benchmarks actually ran in parallel).
 * Informational rather than gated: they have no counterpart in older
 * baselines, and compareToBaseline treats unmatched records as such.
 */
void
addProcessRecords(bench::BenchReport &report, double wall_seconds)
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return;
    // ru_maxrss is kilobytes on Linux.
    report.add(kSuite, "process", "max_rss",
               static_cast<double>(ru.ru_maxrss) * 1024.0, "bytes");
    const double cpu =
        static_cast<double>(ru.ru_utime.tv_sec) +
        static_cast<double>(ru.ru_utime.tv_usec) / 1e6 +
        static_cast<double>(ru.ru_stime.tv_sec) +
        static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
    report.add(kSuite, "process", "cpu_utilization",
               wall_seconds > 0.0 ? cpu / wall_seconds : 0.0, "ratio");
}

/**
 * Shared lazily-built inputs so benchmarks reuse one trace/study.
 * Everything derives deterministically from (benchmark, length).
 */
class Fixture
{
  public:
    Fixture(InstCount n, unsigned threads) : n_(n), threads_(threads) {}

    InstCount instructions() const { return n_; }

    /** Resolved worker count for the multi-threaded benchmarks. */
    unsigned threads() const { return threads_; }

    const Trace &
    trace()
    {
        if (trace_.empty())
            trace_ = generateTrace(profileByName(kBenchName), n_);
        return trace_;
    }

    DseStudy &
    study()
    {
        if (!study_) {
            study_ = std::make_unique<DseStudy>(
                profileByName(kBenchName), n_);
            study_->prepare({defaultDesignPoint()});
        }
        return *study_;
    }

    /**
     * Address stream for the stack-distance benchmark: the data
     * addresses the profiled trace actually touches, so hit depths
     * follow real workload locality rather than a synthetic pattern.
     */
    const std::vector<Addr> &
    addressStream()
    {
        if (addrs_.empty()) {
            for (const DynInstr &di : trace()) {
                if (isMem(di.op))
                    addrs_.push_back(di.effAddr);
            }
        }
        return addrs_;
    }

  private:
    InstCount n_;
    unsigned threads_;
    Trace trace_;
    std::unique_ptr<DseStudy> study_;
    std::vector<Addr> addrs_;
};

using RunFn = std::function<void(Fixture &, const bench::MeasureOptions &,
                                 bench::BenchReport &)>;

struct NamedBenchmark
{
    std::string name;
    std::string description;
    RunFn run;
};

void
runProfiler(Fixture &fx, const bench::MeasureOptions &opts,
            bench::BenchReport &report)
{
    const Trace &tr = fx.trace();
    ProfilerConfig cfg;
    cfg.hierarchy = hierarchyFor(defaultDesignPoint());
    cfg.captureL2Stream = true;
    auto m = bench::measure(
        [&] {
            WorkloadProfile p = profileTrace(tr, cfg);
            bench::doNotOptimize(p.program.n);
        },
        opts);
    report.add(kSuite, "profiler", "throughput",
               m.rate(static_cast<double>(tr.size())), "insns/s");
}

void
runStackDistance(Fixture &fx, const bench::MeasureOptions &opts,
                 bench::BenchReport &report)
{
    const std::vector<Addr> &addrs = fx.addressStream();
    // L2-flavoured geometry: few sets keep the per-set stacks deep,
    // which is exactly where the recency-scan cost lives.
    StackDistanceSimulator sim(64, 64, 64);
    auto m = bench::measure(
        [&] {
            for (Addr a : addrs)
                sim.access(a);
            bench::doNotOptimize(sim.accesses());
        },
        opts);
    report.add(kSuite, "stack_distance", "throughput",
               m.rate(static_cast<double>(addrs.size())), "accesses/s");
}

void
runInorderSim(Fixture &fx, const bench::MeasureOptions &opts,
              bench::BenchReport &report)
{
    const Trace &tr = fx.trace();
    SimConfig cfg = simConfigFor(defaultDesignPoint());
    SimResult once = simulateInOrder(tr, cfg);
    auto m = bench::measure(
        [&] {
            SimResult res = simulateInOrder(tr, cfg);
            bench::doNotOptimize(res.cycles);
        },
        opts);
    report.add(kSuite, "inorder_sim", "throughput",
               m.rate(static_cast<double>(once.cycles)), "cycles/s");
}

void
runOoOSim(Fixture &fx, const bench::MeasureOptions &opts,
          bench::BenchReport &report)
{
    const Trace &tr = fx.trace();
    OoOSimConfig cfg = oooSimConfigFor(defaultDesignPoint());
    OoOSimResult once = simulateOutOfOrder(tr, cfg);
    auto m = bench::measure(
        [&] {
            OoOSimResult res = simulateOutOfOrder(tr, cfg);
            bench::doNotOptimize(res.cycles);
        },
        opts);
    report.add(kSuite, "oosim_cycles", "throughput",
               m.rate(static_cast<double>(once.cycles)), "cycles/s");
}

void
runCharacterizeInfer(Fixture &fx, const bench::MeasureOptions &opts,
                     bench::BenchReport &report)
{
    // A full characterization — the 51-kernel battery through the
    // in-order simulator plus the inference pass — per iteration.
    // The short supported lengths keep one inference comparable to
    // the other entries; rates scale linearly with kernel length.
    CharacterizeConfig cfg;
    cfg.lenA = 2048;
    cfg.lenB = 4096;
    ThreadPool pool(fx.threads());
    auto m = bench::measure(
        [&] {
            CharacterizeResult res = characterize(cfg, pool);
            bench::doNotOptimize(res.description.machine.width);
        },
        opts);
    report.add(kSuite, "characterize_infer", "throughput", m.rate(1.0),
               "inferences/s");
}

void
runModelEval(Fixture &fx, const bench::MeasureOptions &opts,
             bench::BenchReport &report)
{
    const DseStudy &study = fx.study();
    const DesignPoint point = defaultDesignPoint();
    auto m = bench::measure(
        [&] {
            PointEvaluation ev = study.evaluate(point);
            bench::doNotOptimize(ev.model().cycles);
        },
        opts);
    report.add(kSuite, "model_eval", "throughput", m.rate(1.0),
               "evals/s");
}

void
runProfileRoundtrip(Fixture &fx, const bench::MeasureOptions &opts,
                    bench::BenchReport &report)
{
    ProfileArtifact artifact = fx.study().artifact(true);
    auto m = bench::measure(
        [&] {
            std::stringstream ss;
            writeProfileArtifact(artifact, ss);
            ProfileArtifact loaded = readProfileArtifact(ss);
            bench::doNotOptimize(loaded.profile.program.n);
        },
        opts);
    report.add(kSuite, "profile_roundtrip", "throughput", m.rate(1.0),
               "roundtrips/s");
}

void
runDseScaling(Fixture &fx, const bench::MeasureOptions &opts,
              bench::BenchReport &report)
{
    StudyRunner runner({profileByName(kBenchName), profileByName("sha")},
                       fx.instructions());
    // Replicate the 192-point space so one sweep carries several
    // milliseconds of evaluation work: with the bare space a sweep
    // is ~100 us of microsecond-scale model evals and the timing
    // would mostly measure pool startup, not the sharded evaluation
    // phase this benchmark is about.
    auto base_space = table2Space();
    std::vector<DesignPoint> space;
    space.reserve(base_space.size() * 16);
    for (int rep = 0; rep < 16; ++rep)
        space.insert(space.end(), base_space.begin(), base_space.end());
    // Build the studies outside the timed region so every thread
    // count measures only the sharded evaluation phase.
    auto warm = runner.evaluateAll(space, 1);
    bench::doNotOptimize(warm.size());
    const double evals_per_run =
        static_cast<double>(runner.benchmarkCount() * space.size());

    // Power-of-two ladder up to the resolved --threads (default: the
    // hardware).  CI pins --threads 8 so the ladder matches the
    // checked-in baseline's threads_1/2/4/8 entries on any runner.
    std::vector<unsigned> ladder;
    for (unsigned t = 1; t < fx.threads(); t *= 2)
        ladder.push_back(t);
    ladder.push_back(fx.threads());

    double rate_one = 0.0;
    double rate_max = 0.0;
    for (unsigned threads : ladder) {
        auto m = bench::measure(
            [&] {
                auto results = runner.evaluateAll(space, threads);
                bench::doNotOptimize(
                    results[0].evals[0].model().cycles);
            },
            opts);
        const double rate = m.rate(evals_per_run);
        if (threads == 1)
            rate_one = rate;
        rate_max = rate; // the ladder ends at --threads
        report.add(kSuite, "dse_scaling",
                   "threads_" + std::to_string(threads), rate,
                   "evals/s");
    }

    // Derived scaling efficiency: throughput at the top of the ladder
    // over the single-threaded throughput.  This is the number the CI
    // gate (--min-scaling) protects — a serialized eval pipeline
    // reports ~1x (or below) here no matter how fast each individual
    // eval is, which is exactly the regression absolute throughput
    // gates kept missing.
    report.add(kSuite, "dse_scaling", "scaling_efficiency",
               rate_one > 0.0 ? rate_max / rate_one : 0.0, "speedup");
}

void
runSearchPareto(Fixture &fx, const bench::MeasureOptions &opts,
                bench::BenchReport &report)
{
    // The evaluator (profiling pass + L2-geometry memo) is shared
    // setup; every timed iteration runs one full genetic search with
    // a fresh cache, so the measurement covers strategy, memoized
    // cache and frontier machinery rather than profiling.
    SearchEvaluator evaluator({profileByName(kBenchName)},
                              fx.instructions(),
                              parseObjectives("energy,delay"));
    SpaceSpec space = SpaceSpec::wide();
    SearchOptions sopts;
    sopts.seed = 7;
    sopts.budget = 512;
    sopts.population = 16;
    sopts.threads = fx.threads();
    SearchResult warm = runSearch(space, "genetic", evaluator, sopts);
    // Same seed, same budget: every iteration performs exactly this
    // many fresh evaluations.
    const double evals_per_run =
        static_cast<double>(warm.stats.misses);
    auto m = bench::measure(
        [&] {
            SearchResult res =
                runSearch(space, "genetic", evaluator, sopts);
            bench::doNotOptimize(res.stats.misses);
        },
        opts);
    report.add(kSuite, "search_pareto", "throughput",
               m.rate(evals_per_run), "evals/s");
}

void
runServeThroughput(Fixture &fx, const bench::MeasureOptions &opts,
                   bench::BenchReport &report)
{
    // The serve hot path at steady state: parse a pipelined request
    // line, hit the memoized cache, serialize the response.  One
    // warm service handles every timed iteration, so after the first
    // sweep the stream is pure cache hits — the regime a long-running
    // replay converges to.  Latency fields stay off: the measurement
    // is the deterministic protocol path.
    serve::ServeConfig cfg;
    cfg.traceLen = fx.instructions();
    cfg.threads = fx.threads();
    cfg.defaultBench = {kBenchName};
    serve::EvalService service(cfg);

    std::string requests;
    const auto space = table2Space();
    const std::size_t n_requests = 1024;
    for (std::size_t i = 0; i < n_requests; ++i) {
        requests += "{\"id\": " + std::to_string(i) +
                    ", \"type\": \"eval\", \"point\": \"" +
                    space[i % space.size()].toKey() + "\"}\n";
    }
    serve::SessionOptions sopts;
    sopts.latencyFields = false;

    auto serveOnce = [&] {
        std::istringstream in(requests);
        std::ostringstream out;
        serve::IstreamLineSource source(in);
        serve::ServerSession session(service, source, out, sopts);
        serve::SessionStats stats = session.run();
        bench::doNotOptimize(stats.responses);
    };
    serveOnce(); // warm: profiles the study, fills the cache

    auto m = bench::measure([&] { serveOnce(); }, opts);
    report.add(kSuite, "serve_throughput", "throughput",
               m.rate(static_cast<double>(n_requests)), "requests/s");
}

void
runServeSaturation(Fixture &fx, const bench::MeasureOptions &opts,
                   bench::BenchReport &report)
{
    // The TCP front end under concurrent load: an in-process epoll
    // server on an ephemeral port, then a ladder of 1/8/64/256
    // loopback clients splitting the same warm request set.  The
    // derived saturation_efficiency (throughput at 64 clients over
    // one client) is what the --min-saturation CI gate protects: an
    // accept loop or dispatcher that serializes sessions collapses
    // under concurrency even when the single-client number looks
    // healthy.
    serve::ServeConfig cfg;
    cfg.traceLen = fx.instructions();
    cfg.threads = fx.threads();
    cfg.defaultBench = {kBenchName};
    serve::EvalService service(cfg);

    serve::SessionOptions sopts;
    sopts.latencyFields = false;

    // Per-connection chatter would swamp the report output.
    std::ostream null_log(nullptr);
    serve::TcpServerConfig tcp; // port 0: ephemeral
    tcp.dispatchers = std::min(4u, std::max(1u, fx.threads()));
    serve::TcpServer server(service, tcp, null_log, sopts);
    std::string error;
    if (!server.start(&error))
        fatal("serve_saturation: ", error);
    const unsigned short port = server.port();

    const auto space = table2Space();
    const std::size_t n_requests = 1024;
    std::vector<std::string> requests;
    requests.reserve(n_requests);
    for (std::size_t i = 0; i < n_requests; ++i) {
        requests.push_back("{\"id\": " + std::to_string(i) +
                           ", \"type\": \"eval\", \"point\": \"" +
                           space[i % space.size()].toKey() + "\"}");
    }

    // One timed unit: `clients` connections, each pipelining its
    // slice of the request set, all joined.  Connection setup is part
    // of the measurement — the accept path is half the point.
    auto slam = [&](std::size_t clients) {
        std::vector<std::thread> workers;
        workers.reserve(clients);
        std::atomic<std::size_t> failures{0};
        for (std::size_t c = 0; c < clients; ++c) {
            const std::size_t lo = c * n_requests / clients;
            const std::size_t hi = (c + 1) * n_requests / clients;
            workers.emplace_back([&, lo, hi] {
                std::vector<std::string> slice(
                    requests.begin() +
                        static_cast<std::ptrdiff_t>(lo),
                    requests.begin() +
                        static_cast<std::ptrdiff_t>(hi));
                serve::LoopbackClient client;
                std::vector<std::string> responses;
                std::string err;
                if (!client.connect(port, &err) ||
                    !client.run(slice, &responses, &err)) {
                    failures.fetch_add(1);
                }
            });
        }
        for (std::thread &t : workers)
            t.join();
        if (failures.load() != 0)
            fatal("serve_saturation: ", failures.load(),
                  " client(s) failed");
    };
    slam(1); // warm: profiles the study, fills the cache

    double rate_one = 0.0;
    double rate_64 = 0.0;
    for (std::size_t clients : {1u, 8u, 64u, 256u}) {
        auto m = bench::measure([&] { slam(clients); }, opts);
        const double rate =
            m.rate(static_cast<double>(n_requests));
        report.add(kSuite, "serve_saturation",
                   "clients_" + std::to_string(clients), rate,
                   "requests/s");
        if (clients == 1)
            rate_one = rate;
        if (clients == 64)
            rate_64 = rate;
    }
    report.add(kSuite, "serve_saturation", "saturation_efficiency",
               rate_one > 0.0 ? rate_64 / rate_one : 0.0, "speedup");

    server.requestStop();
    server.wait();
}

std::vector<NamedBenchmark>
allBenchmarks()
{
    return {
        {"profiler", "profiling-pass throughput (insns/s)",
         runProfiler},
        {"stack_distance",
         "StackDistanceSimulator::access throughput (accesses/s)",
         runStackDistance},
        {"inorder_sim",
         "detailed in-order simulation throughput (cycles/s)",
         runInorderSim},
        {"oosim_cycles",
         "cycle-accurate out-of-order simulation throughput (cycles/s)",
         runOoOSim},
        {"characterize_infer",
         "full machine characterizations per second (sim backend)",
         runCharacterizeInfer},
        {"model_eval", "analytical-model evaluations per second",
         runModelEval},
        {"profile_roundtrip",
         ".mprof artifact save+load round trips per second",
         runProfileRoundtrip},
        {"dse_scaling",
         "parallel DSE sweep throughput at 1..--threads workers",
         runDseScaling},
        {"search_pareto",
         "genetic Pareto search through the memoized eval cache",
         runSearchPareto},
        {"serve_throughput",
         "warm mech_serve session throughput (requests/s)",
         runServeThroughput},
        {"serve_saturation",
         "TCP front end under 1..256 concurrent loopback clients",
         runServeSaturation},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mech;

    Options opt;
    cli::ArgParser parser(
        "mech_bench",
        "named throughput benchmarks with JSON artifacts and "
        "baseline gating");
    parser.add("instructions", "N",
               "dynamic instructions for the benchmark trace",
               &opt.instructions);
    parser.add("repetitions", "N",
               "timed repetitions per benchmark (min-of-N)",
               &opt.repetitions);
    parser.add("min-time-ms", "ms",
               "minimum duration of one repetition", &opt.minTimeMs);
    parser.add("json", "path", "write the JSON artifact here",
               &opt.jsonPath);
    parser.add("baseline", "path",
               "compare against this baseline artifact and exit "
               "nonzero on regression",
               &opt.baselinePath);
    parser.add("max-slowdown", "ratio",
               "slowdown ratio that fails the baseline gate",
               &opt.maxSlowdown);
    parser.add("min-scaling", "ratio",
               "fail unless dse_scaling/scaling_efficiency of THIS "
               "run reaches the ratio (0 = no gate)",
               &opt.minScaling);
    parser.add("min-saturation", "ratio",
               "fail unless serve_saturation/saturation_efficiency "
               "of THIS run reaches the ratio (0 = no gate)",
               &opt.minSaturation);
    parser.add("threads", "N",
               "top worker count for the multi-threaded benchmarks "
               "(0 = all hardware threads)",
               &opt.threads);
    parser.add("filter", "substr",
               "only run benchmarks whose name contains this",
               &opt.filter);
    parser.add("trace-out", "file",
               "write a Chrome Trace Event Format JSON of evaluation "
               "spans on exit (chrome://tracing)",
               &opt.traceOut);
    parser.addFlag("list", "list benchmark names and exit", &opt.list);
    parser.parse(argc, argv);

    if (opt.repetitions < 1)
        fatal("--repetitions must be at least 1");
    if (opt.maxSlowdown <= 0.0)
        fatal("--max-slowdown must be positive");
    if (opt.instructions < 1000)
        fatal("--instructions too small for meaningful measurement");

    auto benchmarks = allBenchmarks();
    if (opt.list) {
        for (const auto &b : benchmarks)
            std::cout << b.name << "  " << b.description << "\n";
        return 0;
    }

    bench::MeasureOptions mopts;
    mopts.repetitions = opt.repetitions;
    mopts.minSeconds = opt.minTimeMs / 1e3;

    Fixture fx(opt.instructions,
               ThreadPool::sanitizeWorkerCount(
                   static_cast<long long>(opt.threads)));
    bench::BenchReport report = bench::makeReport("mech_bench");

    std::cout << "mech_bench: " << opt.instructions
              << " instructions, min-of-" << opt.repetitions
              << " repetitions, >=" << opt.minTimeMs
              << " ms per repetition\n"
              << "build: " << report.compiler << ", "
              << report.buildType << ", git " << report.gitSha
              << "\n\n";

    std::unique_ptr<obs::TraceRecorder> recorder;
    if (!opt.traceOut.empty()) {
        recorder = std::make_unique<obs::TraceRecorder>();
        obs::TraceRecorder::install(recorder.get());
    }

    const auto wallStart = std::chrono::steady_clock::now();
    bool ran_any = false;
    for (const auto &b : benchmarks) {
        if (!opt.filter.empty() &&
            b.name.find(opt.filter) == std::string::npos) {
            continue;
        }
        ran_any = true;
        std::size_t before = report.results.size();
        b.run(fx, mopts, report);
        for (std::size_t i = before; i < report.results.size(); ++i) {
            const bench::BenchRecord &r = report.results[i];
            std::cout << "  " << r.benchmark << "/" << r.metric << ": "
                      << r.value << " " << r.unit << "\n";
        }
    }
    if (!ran_any)
        fatal("--filter '", opt.filter, "' matched no benchmarks");

    const double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();
    {
        const std::size_t before = report.results.size();
        addProcessRecords(report, wallSeconds);
        for (std::size_t i = before; i < report.results.size(); ++i) {
            const bench::BenchRecord &r = report.results[i];
            std::cout << "  " << r.benchmark << "/" << r.metric << ": "
                      << r.value << " " << r.unit << "\n";
        }
    }

    if (recorder) {
        obs::TraceRecorder::install(nullptr);
        std::string traceError;
        if (!recorder->writeJsonFile(opt.traceOut, &traceError))
            warn("mech_bench: --trace-out: ", traceError);
        else
            std::cout << "wrote " << recorder->eventCount()
                      << " trace event(s) to " << opt.traceOut << "\n";
    }

    if (!opt.jsonPath.empty()) {
        try {
            bench::saveReport(report, opt.jsonPath);
            std::cout << "\nwrote " << opt.jsonPath << "\n";
        } catch (const bench::BenchIoError &e) {
            fatal(e.what());
        }
    }

    if (!opt.baselinePath.empty()) {
        bench::BenchReport baseline;
        try {
            baseline = bench::loadReport(opt.baselinePath);
        } catch (const bench::BenchIoError &e) {
            fatal(e.what());
        }
        auto cmp =
            bench::compareToBaseline(report, baseline, opt.maxSlowdown);
        std::cout << "\n";
        bench::printComparison(cmp, opt.maxSlowdown, std::cout);
        if (cmp.anyRegression()) {
            std::cerr << "mech_bench: performance regression vs "
                      << opt.baselinePath << "\n";
            return 1;
        }
        std::cout << "baseline gate passed\n";
    }

    // The scaling gate is absolute, not baseline-relative: a baseline
    // recorded on a small or noisy machine must never lower the bar,
    // and an efficiency regression is a bug at any throughput.
    if (opt.minScaling > 0.0) {
        const bench::BenchRecord *eff = nullptr;
        for (const bench::BenchRecord &r : report.results) {
            if (r.benchmark == "dse_scaling" &&
                r.metric == "scaling_efficiency") {
                eff = &r;
            }
        }
        if (!eff) {
            fatal("--min-scaling needs the dse_scaling benchmark "
                  "(is it excluded by --filter?)");
        }
        std::cout << "\nscaling gate: " << eff->value
                  << "x at --threads " << fx.threads() << " (floor "
                  << opt.minScaling << "x)\n";
        if (eff->value < opt.minScaling) {
            std::cerr << "mech_bench: scaling efficiency "
                      << eff->value << "x is below the --min-scaling "
                      << opt.minScaling << "x floor\n";
            return 1;
        }
        std::cout << "scaling gate passed\n";
    }

    // Same shape as the scaling gate: an absolute floor on how the
    // TCP front end holds up under concurrency, independent of the
    // baseline machine's raw throughput.
    if (opt.minSaturation > 0.0) {
        const bench::BenchRecord *eff = nullptr;
        for (const bench::BenchRecord &r : report.results) {
            if (r.benchmark == "serve_saturation" &&
                r.metric == "saturation_efficiency") {
                eff = &r;
            }
        }
        if (!eff) {
            fatal("--min-saturation needs the serve_saturation "
                  "benchmark (is it excluded by --filter?)");
        }
        std::cout << "\nsaturation gate: " << eff->value
                  << "x at 64 clients (floor " << opt.minSaturation
                  << "x)\n";
        if (eff->value < opt.minSaturation) {
            std::cerr << "mech_bench: saturation efficiency "
                      << eff->value
                      << "x is below the --min-saturation "
                      << opt.minSaturation << "x floor\n";
            return 1;
        }
        std::cout << "saturation gate passed\n";
    }
    return 0;
}
