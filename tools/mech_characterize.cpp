/**
 * @file
 * Machine characterization driver: infer a `.mdesc` description by
 * measuring microbenchmark kernels on a cycle-accurate backend.
 *
 * The reverse of every other tool: instead of configuring a backend
 * from MachineParams, it runs the kernel battery (src/characterize)
 * through the chosen backend and solves the observed cycle counts
 * back into the parameters.  Against the built-in backends the
 * inference must land exactly on the configured Table 1 values;
 * `--check` verifies that field by field and exits non-zero on any
 * divergence beyond `--tolerance`, which is what the CI
 * characterization gate runs.
 *
 * `--out` writes the inferred description as a canonical `.mdesc`
 * file that every other tool loads back via `--mdesc` (and the space
 * grammar's "mdesc:<path>" preset).
 */

#include <cmath>
#include <iostream>
#include <string>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string backend = "sim";
    std::string point_key;
    std::string out_path;
    std::string mdesc_path;
    bool check = false;
    bool verbose = false;
    double tolerance = 0.0;
    unsigned nthreads = 0;

    cli::ArgParser parser(
        "mech_characterize",
        "infer a machine description from microbenchmark kernels "
        "measured on a cycle-accurate backend");
    parser.add("backend", "name",
               "backend to characterize: sim (in-order) or oosim "
               "(out-of-order)",
               &backend);
    parser.add("point", "key",
               "DesignPoint key to measure at (default: the Table 1 "
               "default point)",
               &point_key);
    parser.add("out", "file",
               "write the inferred description as a canonical .mdesc",
               &out_path);
    parser.add("mdesc", "file",
               "characterize a backend configured from this .mdesc "
               "instead of the built-in parameters (with --check, the "
               "inference must recover the file's values)",
               &mdesc_path);
    parser.addFlag("check",
                   "compare the inference against the configured "
                   "parameters and exit non-zero on divergence beyond "
                   "--tolerance",
                   &check);
    parser.add("tolerance", "cycles",
               "largest |inferred - configured| --check accepts "
               "(default 0: exact)",
               &tolerance);
    parser.add("threads", "N",
               "worker threads (0 = all hardware threads); the "
               "inferred description is identical for any value",
               &nthreads);
    parser.addFlag("verbose",
                   "also print every kernel measurement",
                   &verbose);
    parser.parse(argc, argv);
    nthreads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(nthreads));

    CharacterizeConfig cfg;
    cfg.backend = backend;
    if (!mdesc_path.empty()) {
        cfg.point =
            designPointFor(applyMachineDescription(mdesc_path));
    }
    if (!point_key.empty()) {
        auto parsed = DesignPoint::fromKey(point_key);
        if (!parsed)
            fatal("unparseable --point key '", point_key, "'");
        cfg.point = *parsed;
    }

    ThreadPool pool(nthreads <= 1 ? 0 : nthreads);
    const CharacterizeResult result = characterize(cfg, pool);
    const MachineDescription &desc = result.description;

    if (verbose) {
        TextTable table({"kernel", "instructions", "cycles"});
        for (const KernelMeasurement &m : result.measurements) {
            table.addRow({m.kernel, std::to_string(m.instructions),
                          TextTable::num(m.cycles, 0)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // The inferred description, field by field, next to what the
    // backend was actually configured with at this point.
    const MachineParams configured = machineFor(cfg.point);
    {
        TextTable table({"field", "configured", "inferred"});
        const auto all =
            compareMachineParams(configured, desc.machine, -1.0);
        for (const FieldDivergence &f : all) {
            table.addRow({f.field, TextTable::num(f.configured, 3),
                          TextTable::num(f.inferred, 3)});
        }
        table.print(std::cout);
    }
    {
        TextTable table({"class", "stream IPC"});
        for (OpClass oc : kAllOpClasses) {
            table.addRow(
                {std::string(opClassName(oc)),
                 TextTable::num(
                     desc.throughput[static_cast<std::size_t>(oc)],
                     3)});
        }
        std::cout << "\n";
        table.print(std::cout);
    }

    if (!out_path.empty()) {
        try {
            saveMdesc(desc, out_path);
        } catch (const MdescError &e) {
            fatal(e.what());
        }
        std::cout << "\nwrote " << out_path << "\n";
    }

    if (!check)
        return 0;

    // --check: every machine field must round-trip through the
    // measurement within tolerance...
    int failures = 0;
    for (const FieldDivergence &f :
         compareMachineParams(configured, desc.machine, tolerance)) {
        std::cerr << "DIVERGED " << f.field << ": configured "
                  << f.configured << ", inferred " << f.inferred
                  << "\n";
        ++failures;
    }
    // ...and on the out-of-order backend the measured per-class
    // stream throughputs must match the FU/port-pressure prediction
    // (ceil effects at non-divisible kernel lengths stay well under
    // the 0.01 IPC bound).
    if (backend == kOoOSimBackend) {
        for (OpClass oc : kAllOpClasses) {
            const double expect =
                expectedOooStreamIpc(oc, configured, cfg.point.ooo);
            const double got =
                desc.throughput[static_cast<std::size_t>(oc)];
            if (std::abs(got - expect) > 0.01) {
                std::cerr << "DIVERGED throughput/" << opClassName(oc)
                          << ": expected " << expect << ", measured "
                          << got << "\n";
                ++failures;
            }
        }
    }
    if (failures) {
        std::cerr << failures << " field(s) diverged beyond tolerance "
                  << tolerance << "\n";
        return 1;
    }
    std::cout << "\ncheck passed: inference matches the configured "
                 "parameters (tolerance "
              << tolerance << ")\n";
    return 0;
}
