/**
 * @file
 * Profiling front end: run the expensive half of the paper's workflow
 * once and persist it.
 *
 * Generates and profiles the requested benchmarks (trace generation +
 * the single profiling pass that captures the L2 input stream and
 * trains both Table 2 predictors) and writes one `.mprof` artifact
 * per benchmark.  Later processes — calibrate --profile-dir, the
 * figure benches, any EvalBackend consumer — load those artifacts and
 * skip re-profiling entirely, with bit-identical model results.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;
    using clock = std::chrono::steady_clock;

    std::string suite = "mibench";
    std::string bench_list;
    std::string out_dir = "profiles";
    InstCount n = 200000;
    unsigned nthreads = 0;
    bool no_trace = false;
    bool json = false;

    cli::ArgParser parser(
        "mech_profile",
        "profile benchmarks once and write .mprof artifacts");
    parser.add("suite", "name",
               "benchmark suite: mibench, spec or all", &suite);
    parser.add("bench", "names",
               "comma-separated benchmark names (overrides --suite)",
               &bench_list);
    parser.add("out", "dir", "output directory for .mprof artifacts",
               &out_dir);
    parser.add("instructions", "N", "dynamic instructions per trace",
               &n);
    parser.add("threads", "N",
               "worker threads for profiling (0 = all hardware "
               "threads)",
               &nthreads);
    parser.addFlag("no-trace",
                   "omit the dynamic trace (model-only artifacts, "
                   "~40x smaller; 'sim' backend unavailable)",
                   &no_trace);
    parser.addFlag("json", "also write a <bench>.json debug summary",
                   &json);
    parser.parse(argc, argv);
    nthreads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(nthreads));

    // Resolve the benchmark list.
    std::vector<BenchmarkProfile> benches;
    if (!bench_list.empty()) {
        for (const std::string &name : cli::splitCsv(bench_list)) {
            if (name.empty())
                fatal("empty benchmark name in --bench list");
            benches.push_back(profileByName(name));
        }
    } else if (suite == "mibench") {
        benches = mibenchSuite();
    } else if (suite == "spec") {
        benches = specLikeSuite();
    } else if (suite == "all") {
        benches = mibenchSuite();
        const auto &spec = specLikeSuite();
        benches.insert(benches.end(), spec.begin(), spec.end());
    } else {
        fatal("unknown suite '", suite,
              "' (expected mibench, spec or all)");
    }

    std::filesystem::create_directories(out_dir);

    std::cout << "profiling " << benches.size() << " benchmark(s), "
              << n << " instructions each, " << nthreads
              << " thread(s) -> " << out_dir << "/\n\n";

    auto t0 = clock::now();

    // One task per benchmark: profile and persist.
    ThreadPool pool(nthreads <= 1 ? 0 : nthreads);
    std::vector<std::future<std::uintmax_t>> done;
    done.reserve(benches.size());
    for (const auto &bench : benches) {
        std::string path = profileArtifactPath(out_dir, bench.name);
        done.push_back(pool.submit([&bench, path, n, no_trace, json,
                                    &out_dir]() -> std::uintmax_t {
            // One artifact snapshot serves both the binary file and
            // the optional JSON summary.
            ProfileArtifact artifact =
                DseStudy(bench, n).artifact(!no_trace);
            saveProfileArtifact(artifact, path);
            if (json) {
                std::ofstream os(out_dir + "/" + bench.name + ".json");
                if (!os)
                    fatal("cannot write JSON summary for ", bench.name);
                writeProfileJson(artifact, os);
            }
            return std::filesystem::file_size(path);
        }));
    }

    TextTable table({"benchmark", "artifact", "size (KiB)"});
    std::uintmax_t total_bytes = 0;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        std::uintmax_t bytes = 0;
        try {
            bytes = done[i].get();
        } catch (const std::exception &e) {
            // ProfileIoError from the codec, filesystem_error from
            // file_size — either way a user-environment problem.
            fatal("cannot write artifact for ", benches[i].name, ": ",
                  e.what());
        }
        total_bytes += bytes;
        table.addRow({benches[i].name,
                      benches[i].name + kProfileExtension,
                      TextTable::num(static_cast<double>(bytes) / 1024.0,
                                     1)});
    }
    table.print(std::cout);

    double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    std::cout << "\nwrote " << benches.size() << " artifact(s), "
              << TextTable::num(static_cast<double>(total_bytes) /
                                    (1024.0 * 1024.0), 2)
              << " MiB total, in " << TextTable::num(secs, 2)
              << " s\nconsume with: calibrate --profile-dir " << out_dir
              << "  or  table2_design_space --profile-dir " << out_dir
              << "\n";
    return 0;
}
