/**
 * @file
 * mech_search: design-space search over generative spaces.
 *
 * The front end of src/search/: describe a space (a preset like
 * "wide" or the full axis grammar), pick a strategy and objectives,
 * and get a Pareto frontier plus the scalar-best configuration —
 * backed by the memoized evaluation cache, sharded across a thread
 * pool, and bit-identical for any --threads given the same --seed.
 *
 *   mech_search --strategy genetic --objective edp \
 *               --budget 2000 --seed 7 --json out.json
 *
 * searches the 12544-point "wide" space with at most 2000 model
 * evaluations.  See docs/search.md for the spec grammar, strategy
 * and objective catalogue, cache semantics and the determinism
 * contract.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string space = "wide";
    std::string strategy = "genetic";
    std::string objective = "edp";
    std::string bench_csv = "jpeg_c,sha";
    std::string backend = "model";
    std::string profile_dir;
    std::string json_path;
    std::string trace_out;
    std::string log_level;
    InstCount instructions = 50000;
    std::uint64_t budget = 2000;
    std::uint64_t seed = 1;
    std::uint64_t batch = 256;
    unsigned threads = 0;
    unsigned population = 24;
    bool list_strategies = false;
    bool list_objectives = false;

    cli::ArgParser parser(
        "mech_search",
        "heuristic design-space search with Pareto frontiers and a "
        "memoized evaluation cache");
    parser.add("space", "spec",
               "design space: a preset (table2, wide) or an axis "
               "grammar string (docs/search.md)",
               &space);
    parser.add("strategy", "name",
               "search strategy (see --list-strategies)", &strategy);
    parser.add("objective", "csv",
               "objectives; the first is the scalar target, the full "
               "list spans the Pareto frontier (--list-objectives)",
               &objective);
    parser.add("budget", "N",
               "max fresh model evaluations; cache hits are free "
               "(0 = unlimited, exhaustive only)",
               &budget);
    parser.add("seed", "N",
               "seed for every stochastic choice (same seed + budget "
               "=> bit-identical results at any --threads)",
               &seed);
    parser.add("threads", "N",
               "worker threads (0 = all hardware threads)", &threads);
    parser.add("bench", "csv", "benchmarks to optimize over",
               &bench_csv);
    parser.add("instructions", "N",
               "dynamic instructions per benchmark trace",
               &instructions);
    parser.add("backend", "name",
               "evaluation backend feeding the objectives",
               &backend);
    parser.add("population", "N", "population size (genetic)",
               &population);
    parser.add("batch", "N", "points per evaluation batch", &batch);
    parser.add("profile-dir", "dir",
               "load .mprof artifacts from this directory instead of "
               "re-profiling",
               &profile_dir);
    parser.add("json", "path",
               "write the search artifact here (schema-versioned, "
               "thread-count independent)",
               &json_path);
    parser.add("trace-out", "file",
               "write a Chrome Trace Event Format JSON of evaluation "
               "spans on exit (chrome://tracing)",
               &trace_out);
    parser.add("log-level", "level",
               "stderr verbosity: error, warn, info, debug or trace "
               "(default info)",
               &log_level);
    parser.addFlag("list-strategies",
                   "list search strategies and exit",
                   &list_strategies);
    parser.addFlag("list-objectives",
                   "list objectives and exit", &list_objectives);
    parser.parse(argc, argv);

    if (!log_level.empty()) {
        const auto level = parseLogLevel(log_level);
        if (!level) {
            fatal("unknown --log-level '", log_level,
                  "' (use error, warn, info, debug or trace)");
        }
        setLogLevel(*level);
    }

    if (list_strategies) {
        for (const std::string &name : strategyNames()) {
            std::cout << name << "  " << strategyDescription(name)
                      << "\n";
        }
        return 0;
    }
    if (list_objectives) {
        for (const Objective &obj : allObjectives()) {
            std::cout << obj.name << "  [" << obj.unit << "] "
                      << (obj.maximize ? "maximize" : "minimize")
                      << "\n";
        }
        return 0;
    }

    SpaceSpec spec = SpaceSpec::parse(space);

    std::vector<BenchmarkProfile> benches;
    for (const std::string &name : cli::splitCsv(bench_csv)) {
        if (name.empty())
            fatal("empty benchmark name in '", bench_csv, "'");
        benches.push_back(profileByName(name));
    }

    SearchOptions opts;
    opts.seed = seed;
    opts.budget = budget;
    opts.threads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(threads));
    opts.batchSize = batch;
    opts.population = population;

    SearchEvaluator evaluator(std::move(benches), instructions,
                              parseObjectives(objective),
                              backendSet(backend));
    if (!profile_dir.empty())
        evaluator.useProfileDir(profile_dir);

    std::cout << "mech_search: " << spec.size() << "-point space, "
              << "strategy " << strategy << ", objectives "
              << objective << ", budget "
              << (budget ? std::to_string(budget)
                         : std::string("unlimited"))
              << ", seed " << seed << ", " << opts.threads
              << " worker thread(s)\n\n";

    std::unique_ptr<obs::TraceRecorder> recorder;
    if (!trace_out.empty()) {
        recorder = std::make_unique<obs::TraceRecorder>();
        obs::TraceRecorder::install(recorder.get());
    }

    SearchResult result = runSearch(spec, strategy, evaluator, opts);
    if (recorder) {
        obs::TraceRecorder::install(nullptr);
        std::string error;
        if (!recorder->writeJsonFile(trace_out, &error))
            warn("mech_search: --trace-out: ", error);
        else
            std::cerr << "mech_search: wrote "
                      << recorder->eventCount()
                      << " trace event(s) to " << trace_out << "\n";
    }
    printSearchResult(result, std::cout);

    if (!json_path.empty()) {
        saveSearchResult(result, json_path);
        std::cout << "\nwrote " << json_path << "\n";
    }

    // A search that found nothing is a failure, not a quiet success
    // (CI smoke-runs rely on this).
    if (result.frontier.empty()) {
        std::cerr << "mech_search: empty Pareto frontier\n";
        return 1;
    }
    return 0;
}
