/**
 * @file
 * mech_serve: the long-running batched evaluation service.
 *
 * Speaks newline-delimited JSON over stdin/stdout (the default) or a
 * loopback TCP socket (--port).  Requests name a design point or a
 * whole design space, a benchmark set, one or more registered
 * backends and an objective set; responses stream back in request
 * order, answered from a shared memoized evaluation cache whenever
 * the point has been seen before.
 *
 *   echo '{"id": 1, "type": "eval",
 *          "point": "l2kb=512,assoc=8,depth=9,freq=1,
 *                    width=4,pred=gshare1k"}' | mech_serve --threads 4
 *
 * See docs/serving.md for the protocol schema, batching semantics
 * and the determinism contract, and examples/serve_client for a
 * scripted walkthrough.  All diagnostics go to stderr; stdout is
 * reserved for the response stream.
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>

#include "mech/mech.hh"

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string bench_csv = "jpeg_c,sha";
    std::string backends_csv = "model";
    std::string objectives_csv = "cpi";
    std::string profile_dir;
    InstCount instructions = 50000;
    std::uint64_t max_space = 100000;
    std::uint64_t max_batch = 64;
    std::uint64_t max_queue = 1024;
    std::uint64_t max_inflight = 256;
    unsigned threads = 0;
    unsigned dispatchers = 0;
    unsigned dispatch_hold_ms = 0;
    unsigned port = 0;
    int metrics_port = -1;
    std::string cache_dir;
    std::string mdesc_path;
    std::string trace_out;
    std::string log_level;
    bool deterministic = false;

    cli::ArgParser parser(
        "mech_serve",
        "long-running batched evaluation service over "
        "newline-delimited JSON (stdin/stdout, or TCP with --port)");
    parser.add("port", "N",
               "serve on 127.0.0.1:N instead of stdin/stdout",
               &port);
    parser.add("threads", "N",
               "worker threads for cache misses (0 = all hardware "
               "threads); responses are byte-identical for any value",
               &threads);
    parser.add("instructions", "N",
               "dynamic instructions per benchmark trace when "
               "profiling",
               &instructions);
    parser.add("profile-dir", "dir",
               "load .mprof artifacts from this directory instead of "
               "re-profiling",
               &profile_dir);
    parser.add("bench", "csv",
               "benchmark set for requests that name none",
               &bench_csv);
    parser.add("backend", "csv",
               "backend set for requests that name none",
               &backends_csv);
    parser.add("objective", "csv",
               "objective set for requests that name none",
               &objectives_csv);
    parser.add("max-batch", "N",
               "most pipelined requests coalesced into one "
               "evaluation flush",
               &max_batch);
    parser.add("max-space", "N",
               "largest space a batch request may fan out",
               &max_space);
    parser.add("max-queue", "N",
               "admission control: total request lines queued across "
               "all TCP sessions before shedding with "
               "\"overloaded\" errors",
               &max_queue);
    parser.add("max-inflight", "N",
               "admission control: queued request lines any one TCP "
               "session may hold",
               &max_inflight);
    parser.add("dispatchers", "N",
               "dispatcher threads answering TCP sessions (0 = "
               "derive from --threads); per-session responses are "
               "byte-identical for any value",
               &dispatchers);
    parser.add("dispatch-hold-ms", "N",
               "testing knob: freeze dispatch for N ms after the "
               "first TCP connection so overload goldens are "
               "deterministic",
               &dispatch_hold_ms);
    parser.add("cache-dir", "dir",
               "persistent warm cache: reload .mcache spills from "
               "this directory on first use and write them back on "
               "drain",
               &cache_dir);
    parser.add("mdesc", "file",
               "serve a characterized .mdesc machine description "
               "instead of the built-in Table 1 parameters",
               &mdesc_path);
    parser.add("metrics-port", "N",
               "with --port: also serve a Prometheus text exposition "
               "at http://127.0.0.1:N/metrics (0 = ephemeral port)",
               &metrics_port);
    parser.add("trace-out", "file",
               "write a Chrome Trace Event Format JSON of "
               "request/evaluation spans on exit (chrome://tracing)",
               &trace_out);
    parser.add("log-level", "level",
               "stderr verbosity: error, warn, info, debug or trace "
               "(default info)",
               &log_level);
    parser.addFlag("deterministic",
                   "omit per-response latency fields, making the "
                   "response stream byte-reproducible",
                   &deterministic);
    parser.parse(argc, argv);

    if (!log_level.empty()) {
        const auto level = parseLogLevel(log_level);
        if (!level) {
            fatal("unknown --log-level '", log_level,
                  "' (use error, warn, info, debug or trace)");
        }
        setLogLevel(*level);
    }
    if (port > 65535)
        fatal("--port must be below 65536");
    if (metrics_port > 65535)
        fatal("--metrics-port must be below 65536");
    if (metrics_port >= 0 && port == 0)
        fatal("--metrics-port requires the TCP front end (--port)");
    if (max_batch == 0)
        fatal("--max-batch must be positive");
    if (max_space == 0)
        fatal("--max-space must be positive");
    if (max_queue == 0)
        fatal("--max-queue must be positive");
    if (max_inflight == 0)
        fatal("--max-inflight must be positive");
    if (dispatchers > 64)
        fatal("--dispatchers capped at 64");
    if (instructions < 1000)
        fatal("--instructions too small for a meaningful profile");

    serve::ServeConfig cfg;
    cfg.traceLen = instructions;
    cfg.profileDir = profile_dir;
    cfg.threads = ThreadPool::sanitizeWorkerCount(
        static_cast<long long>(threads));
    cfg.maxSpacePoints = max_space;
    cfg.cacheDir = cache_dir;
    cfg.mdescPath = mdesc_path;
    // Resolve the default sets now: a typoed --bench/--backend/
    // --objective must fail at startup like every other tool, not
    // surface request by request once the daemon is already up.
    cfg.defaultBench.clear();
    for (const std::string &name : cli::splitCsv(bench_csv)) {
        if (name.empty())
            fatal("empty benchmark name in '", bench_csv, "'");
        profileByName(name); // fatal() on an unknown profile
        cfg.defaultBench.push_back(name);
    }
    backendSet(backends_csv); // fatal() on an unknown backend
    cfg.defaultBackends = cli::splitCsv(backends_csv);
    parseObjectives(objectives_csv); // fatal() on an unknown objective
    cfg.defaultObjectives = cli::splitCsv(objectives_csv);

    serve::SessionOptions opts;
    opts.maxBatch = max_batch;
    opts.latencyFields = !deterministic;

    // The recorder outlives the service so drain-time spans (cache
    // spills) land in the file; a null recorder keeps every span a
    // single relaxed load.
    std::unique_ptr<obs::TraceRecorder> recorder;
    if (!trace_out.empty()) {
        recorder = std::make_unique<obs::TraceRecorder>();
        obs::TraceRecorder::install(recorder.get());
    }

    serve::EvalService service(cfg);
    std::cerr << "mech_serve: defaults bench=" << bench_csv
              << " backends=" << backends_csv
              << " objectives=" << objectives_csv << "; "
              << cfg.threads << " worker thread(s), batch cap "
              << max_batch << "\n";

    int rc = 0;
    if (port != 0) {
        serve::TcpServerConfig tcp;
        tcp.port = static_cast<unsigned short>(port);
        tcp.dispatchers =
            dispatchers != 0
                ? dispatchers
                : std::min(4u, std::max(1u, cfg.threads));
        tcp.maxQueue = max_queue;
        tcp.maxInflight = max_inflight;
        tcp.dispatchHoldMs = dispatch_hold_ms;
        tcp.metricsPort = metrics_port;
        rc = serve::runTcpServer(service, tcp, std::cerr, opts);
    } else {
        serve::runStdioServer(service, std::cin, std::cout, std::cerr,
                              opts);
    }
    // Spill the warm caches after the drain (no-op without
    // --cache-dir): the next start with the same directory answers
    // repeat points without re-simulating.
    service.persistCaches(&std::cerr);

    if (recorder) {
        std::string error;
        if (!recorder->writeJsonFile(trace_out, &error))
            warn("mech_serve: --trace-out: ", error);
        else
            std::cerr << "mech_serve: wrote "
                      << recorder->eventCount() << " trace event(s) to "
                      << trace_out << "\n";
    }
    return rc;
}
