/**
 * @file
 * mech_shard: scatter-gather client over mech_serve shards, plus a
 * scripted NDJSON replay client for smokes and CI.
 *
 * Scatter mode splits a SpaceSpec across N running servers by
 * DesignPoint hash, pipelines one eval request per point to the
 * owning shard, and prints the exact "frontier" response line a
 * single server would have produced for the whole space:
 *
 *   mech_shard --ports 7301,7302 --space l2kb=256,512:assoc=4,8
 *
 * Replay mode pipelines a request file to one server and prints the
 * response lines — the client half of the CI golden smokes:
 *
 *   mech_shard --port 7301 --replay tests/data/serve_smoke.jsonl
 *
 * --flood switches replay to slam mode (write everything, half-close,
 * read to EOF), which is how the overload smoke drives admission
 * control past its bounds.  Diagnostics go to stderr; stdout carries
 * only response lines.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mech/mech.hh"

namespace {

using namespace mech;

/**
 * One shard's worth of client-observed replay accounting: latencies
 * land in a log2 histogram (so the quantiles match the server's own
 * observability conventions) and shed responses are counted by their
 * structured "overloaded" code.
 */
struct ShardSummary
{
    std::string target;
    std::size_t requests = 0;
    std::size_t responses = 0;
    std::size_t shed = 0;
    obs::LatencyHistogram latency;

    void
    note(const std::vector<std::string> &reply_lines,
         const std::vector<double> &latencies_us)
    {
        responses += reply_lines.size();
        for (const std::string &r : reply_lines) {
            if (r.find("\"code\": \"overloaded\"") != std::string::npos)
                ++shed;
        }
        for (double us : latencies_us) {
            latency.record(us <= 0.0
                               ? 0
                               : static_cast<std::uint64_t>(us));
        }
    }
};

/** The per-shard latency/shed summary table (stderr, not protocol). */
void
printShardSummary(const std::vector<ShardSummary> &shards,
                  std::ostream &os)
{
    TextTable table({"shard", "requests", "responses", "shed",
                     "p50_us", "p95_us", "p99_us"});
    for (const ShardSummary &s : shards) {
        table.addRow({s.target, std::to_string(s.requests),
                      std::to_string(s.responses),
                      std::to_string(s.shed),
                      std::to_string(s.latency.quantile(0.50)),
                      std::to_string(s.latency.quantile(0.95)),
                      std::to_string(s.latency.quantile(0.99))});
    }
    table.print(os);
}

/** Read non-blank request lines from @p path. */
std::vector<std::string>
readRequestFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open replay file '", path, "'");
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        bool blank = true;
        for (char c : line) {
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        }
        if (!blank)
            lines.push_back(line);
    }
    return lines;
}

int
runReplay(unsigned short port, const std::string &path, bool flood,
          std::uint64_t window)
{
    const std::vector<std::string> lines = readRequestFile(path);
    serve::LoopbackClient client;
    std::string error;
    if (!client.connect(port, &error))
        fatal("mech_shard: ", error);
    std::vector<std::string> responses;
    std::vector<double> latencies;
    const bool ok =
        flood ? client.flood(lines, &responses, &error)
              : client.run(lines, &responses, &error,
                           static_cast<std::size_t>(window),
                           &latencies);
    for (const std::string &response : responses)
        std::cout << response << "\n";
    if (!ok)
        fatal("mech_shard: replay failed: ", error);
    std::cerr << "mech_shard: replayed " << lines.size()
              << " line(s), " << responses.size() << " response(s)\n";

    // Client-observed accounting; flood mode has no send-to-receive
    // pairing (the whole file goes out at once), so its latency
    // columns read 0 and only the shed count is meaningful.
    std::vector<ShardSummary> shards(1);
    shards[0].target = "127.0.0.1:" + std::to_string(port);
    shards[0].requests = lines.size();
    shards[0].note(responses, latencies);
    printShardSummary(shards, std::cerr);
    return 0;
}

/** One gathered double, with path diagnostics on shape mismatch. */
double
gatherValue(const json::Value &response, const std::string &backend,
            const std::string &objective)
{
    const json::Value *results = response.get("results");
    const json::Value *be = results ? results->get(backend) : nullptr;
    const json::Value *objs = be ? be->get("objectives") : nullptr;
    const json::Value *v = objs ? objs->get(objective) : nullptr;
    if (!v || !v->isNumber()) {
        fatal("mech_shard: response lacks results.", backend,
              ".objectives.", objective);
    }
    return v->number;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mech;

    std::string ports_csv;
    std::string space;
    std::string bench_csv = "jpeg_c,sha";
    std::string backends_csv = "model";
    std::string objectives_csv = "cpi";
    std::string replay_file;
    std::string log_level;
    std::uint64_t max_space = 100000;
    std::uint64_t window = 64;
    unsigned port = 0;
    bool flood = false;
    bool send_shutdown = false;

    cli::ArgParser parser(
        "mech_shard",
        "scatter-gather a design space across mech_serve shards, or "
        "replay a request file against one server");
    parser.add("ports", "csv",
               "shard server ports on 127.0.0.1 (scatter mode)",
               &ports_csv);
    parser.add("space", "spec",
               "design space to scatter (preset or axis grammar)",
               &space);
    parser.add("bench", "csv", "benchmark set for every request",
               &bench_csv);
    parser.add("backend", "csv",
               "backend for every request (exactly one)",
               &backends_csv);
    parser.add("objective", "csv", "objective set for every request",
               &objectives_csv);
    parser.add("max-space", "N",
               "largest space this client will enumerate", &max_space);
    parser.add("window", "N",
               "most requests outstanding per connection (keep at or "
               "below the server's --max-inflight)",
               &window);
    parser.add("port", "N", "server port for --replay", &port);
    parser.add("replay", "file",
               "replay this NDJSON request file and print responses",
               &replay_file);
    parser.addFlag("flood",
                   "replay by writing everything at once and reading "
                   "to EOF (overload smokes)",
                   &flood);
    parser.addFlag("shutdown",
                   "send a shutdown request to every shard after the "
                   "gather",
                   &send_shutdown);
    parser.add("log-level", "level",
               "stderr verbosity: error, warn, info, debug or trace "
               "(default info)",
               &log_level);
    parser.parse(argc, argv);

    if (!log_level.empty()) {
        const auto level = parseLogLevel(log_level);
        if (!level) {
            fatal("unknown --log-level '", log_level,
                  "' (use error, warn, info, debug or trace)");
        }
        setLogLevel(*level);
    }

    if (!replay_file.empty()) {
        if (port == 0 || port > 65535)
            fatal("--replay needs --port");
        if (window == 0)
            fatal("--window must be positive");
        return runReplay(static_cast<unsigned short>(port),
                         replay_file, flood, window);
    }

    // Scatter-gather mode.
    if (ports_csv.empty())
        fatal("scatter mode needs --ports (or use --replay)");
    if (space.empty())
        fatal("scatter mode needs --space");
    if (window == 0)
        fatal("--window must be positive");

    std::vector<unsigned short> ports;
    for (const std::string &token : cli::splitCsv(ports_csv)) {
        const unsigned long value = std::stoul(token);
        if (value == 0 || value > 65535)
            fatal("bad port '", token, "'");
        ports.push_back(static_cast<unsigned short>(value));
    }

    std::string error;
    auto spec = SpaceSpec::tryParse(space, &error);
    if (!spec)
        fatal("bad space '", space, "': ", error);
    if (std::string why = spec->check(); !why.empty())
        fatal("invalid space '", space, "': ", why);
    if (spec->size() > max_space) {
        fatal("space has ", spec->size(),
              " points; this client caps at ", max_space,
              " (see --max-space)");
    }

    const BackendSet backends = backendSet(backends_csv);
    if (backends.size() != 1)
        fatal("scatter mode takes exactly one --backend");
    if (spec->hasOooAxes() && !backends[0]->usesOoo()) {
        fatal("space '", space,
              "' sweeps out-of-order axes but backend '",
              std::string(backends[0]->name()),
              "' ignores them; use an out-of-order backend");
    }
    const std::string backend_name(backends[0]->name());
    const std::vector<Objective> objectives =
        parseObjectives(objectives_csv);
    std::vector<std::string> bench_names;
    for (const std::string &name : cli::splitCsv(bench_csv))
        bench_names.push_back(profileByName(name).name);

    // Partition the enumeration across the shards by point hash.
    const std::uint64_t n = spec->size();
    std::vector<DesignPoint> points;
    points.reserve(n);
    std::vector<std::vector<std::uint64_t>> shardIdx(ports.size());
    for (std::uint64_t i = 0; i < n; ++i) {
        points.push_back(spec->at(i));
        shardIdx[serve::shardOf(points.back(), ports.size())]
            .push_back(i);
    }

    std::vector<serve::FrontierEntry> entries(n);
    serve::GatherCounts counts;
    counts.requested = n;
    std::vector<ShardSummary> summaries(ports.size());
    for (std::size_t s = 0; s < ports.size(); ++s) {
        std::vector<std::string> lines;
        lines.reserve(shardIdx[s].size());
        for (std::uint64_t idx : shardIdx[s]) {
            std::ostringstream os;
            os << "{\"id\": " << idx << ", \"type\": \"eval\", "
               << "\"point\": ";
            json::writeString(os, points[idx].toKey());
            os << ", \"bench\": ";
            json::writeString(os, bench_csv);
            os << ", \"backends\": ";
            json::writeString(os, backends_csv);
            os << ", \"objectives\": ";
            json::writeString(os, objectives_csv);
            os << "}";
            lines.push_back(os.str());
        }
        if (lines.empty())
            continue;

        serve::LoopbackClient client;
        if (!client.connect(ports[s], &error))
            fatal("mech_shard: shard ", s, ": ", error);
        std::vector<std::string> responses;
        std::vector<double> latencies;
        if (!client.run(lines, &responses, &error,
                        static_cast<std::size_t>(window),
                        &latencies)) {
            fatal("mech_shard: shard ", s, " failed: ", error);
        }
        summaries[s].target =
            "127.0.0.1:" + std::to_string(ports[s]);
        summaries[s].requests = lines.size();
        summaries[s].note(responses, latencies);
        std::cerr << "mech_shard: shard " << s << " (port "
                  << ports[s] << "): " << responses.size()
                  << " point(s)\n";

        for (const std::string &response : responses) {
            auto value = json::parse(response, &error);
            if (!value)
                fatal("mech_shard: bad response line: ", error);
            const json::Value *type = value->get("type");
            if (!type || !type->isString() ||
                type->string != "result") {
                fatal("mech_shard: shard ", s,
                      " answered: ", response);
            }
            const json::Value *id = value->get("id");
            auto idx = id ? id->asU64() : std::nullopt;
            if (!idx || *idx >= n)
                fatal("mech_shard: response with bad id: ", response);
            const json::Value *cached = value->get("cached");
            if (cached && cached->isBool() && cached->boolean)
                ++counts.hits;
            else
                ++counts.misses;

            serve::FrontierEntry &entry = entries[*idx];
            entry.pointKey = points[*idx].toKey();
            entry.label = points[*idx].label();
            entry.objectives.clear();
            for (const Objective &obj : objectives) {
                entry.objectives.push_back(
                    gatherValue(*value, backend_name, obj.name));
            }
        }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        if (entries[i].objectives.empty())
            fatal("mech_shard: point ", points[i].toKey(),
                  " was never answered");
    }

    std::cout << serve::frontierResponse(
                     "", spec->describe(), n, backend_name, objectives,
                     bench_names, entries, counts)
              << "\n";
    printShardSummary(summaries, std::cerr);

    if (send_shutdown) {
        for (std::size_t s = 0; s < ports.size(); ++s) {
            serve::LoopbackClient client;
            if (!client.connect(ports[s], &error))
                continue; // already gone
            std::vector<std::string> responses;
            client.run({"{\"type\": \"shutdown\"}"}, &responses,
                       &error);
        }
        std::cerr << "mech_shard: sent shutdown to " << ports.size()
                  << " shard(s)\n";
    }
    return 0;
}
